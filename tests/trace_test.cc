// Tests for the hierarchical trace collector (common/trace.h): span
// nesting, parent propagation into ParallelFor workers, Chrome-JSON
// well-formedness, the determinism of the text-tree export across thread
// counts, ring-buffer semantics, and the LP/SAT introspection traces.

#include "common/trace.h"

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "solver/lp.h"
#include "solver/sat.h"
#include "solver/sat_backend.h"

namespace pso {
namespace {

using trace::Collector;
using trace::Event;

// RAII enable/disable so a failing test cannot leak tracing into others.
struct ScopedTracing {
  explicit ScopedTracing(size_t capacity = Collector::kDefaultCapacity) {
    Collector::Global().Enable(capacity);
  }
  ~ScopedTracing() { Collector::Global().Disable(); }
};

std::map<uint64_t, Event> SpansById(const std::vector<Event>& events) {
  std::map<uint64_t, Event> out;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kSpan) out[e.id] = e;
  }
  return out;
}

const Event* FindSpan(const std::vector<Event>& events,
                      const std::string& name) {
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kSpan && e.name == name) return &e;
  }
  return nullptr;
}

TEST(TraceTest, DisabledRecordsNothing) {
  Collector::Global().Disable();
  Collector::Global().Clear();
  {
    trace::Span span("should.not.appear");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    trace::Instant("neither.this");
    trace::CounterSample("nor.this", 1.0);
  }
  EXPECT_TRUE(Collector::Global().TakeEvents().empty());
}

TEST(TraceTest, NestedSpansLinkParentToChild) {
  ScopedTracing tracing;
  {
    trace::Span outer("outer");
    ASSERT_TRUE(outer.active());
    {
      trace::Span inner("inner");
      ASSERT_TRUE(inner.active());
      trace::Span leaf("leaf");
    }
  }
  std::vector<Event> events = Collector::Global().TakeEvents();
  const Event* outer = FindSpan(events, "outer");
  const Event* inner = FindSpan(events, "inner");
  const Event* leaf = FindSpan(events, "leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(leaf->parent, inner->id);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);
}

TEST(TraceTest, InstantsAndCountersAttachToCurrentSpan) {
  ScopedTracing tracing;
  {
    trace::Span span("holder");
    trace::Instant("tick", {{"k", "v"}});
    trace::CounterSample("gauge", 42.5);
  }
  std::vector<Event> events = Collector::Global().TakeEvents();
  const Event* holder = FindSpan(events, "holder");
  ASSERT_NE(holder, nullptr);
  bool saw_instant = false;
  bool saw_counter = false;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kInstant && e.name == "tick") {
      saw_instant = true;
      EXPECT_EQ(e.parent, holder->id);
      ASSERT_EQ(e.args.size(), 1u);
      EXPECT_EQ(e.args[0].first, "k");
      EXPECT_EQ(e.args[0].second, "v");
    }
    if (e.kind == Event::Kind::kCounter && e.name == "gauge") {
      saw_counter = true;
      EXPECT_EQ(e.parent, holder->id);
      EXPECT_DOUBLE_EQ(e.value, 42.5);
    }
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(TraceTest, ParallelForChunksNestUnderRegionSpan) {
  ScopedTracing tracing;
  ThreadPool pool(4);
  {
    trace::Span pipeline("pipeline");
    ParallelFor(&pool, 64, [&](size_t begin, size_t end) {
      trace::Span chunk("chunk");
      for (size_t i = begin; i < end; ++i) {
      }
    });
  }
  std::vector<Event> events = Collector::Global().TakeEvents();
  const Event* pipeline = FindSpan(events, "pipeline");
  const Event* region = FindSpan(events, "parallel.for");
  ASSERT_NE(pipeline, nullptr);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->parent, pipeline->id);
  size_t chunks = 0;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kSpan && e.name == "chunk") {
      ++chunks;
      // Worker-thread chunk spans must nest under the region span even
      // though they ran on different threads.
      EXPECT_EQ(e.parent, region->id);
    }
  }
  EXPECT_GT(chunks, 0u);
}

// Minimal recursive-descent JSON validator — enough to prove the export
// is well-formed without a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceTest, ChromeJsonIsWellFormed) {
  ScopedTracing tracing;
  ThreadPool pool(4);
  {
    trace::Span span("outer \"quoted\" name");
    span.Arg("note", "value with \\ and \"quotes\" and\nnewline");
    trace::Instant("mark", {{"x", "1"}});
    trace::CounterSample("c", -0.5);
    ParallelFor(&pool, 16, [&](size_t, size_t) {});
  }
  std::string json = Collector::Global().ChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// The deterministic workload: a pipeline span over a ParallelFor whose
// chunks open their own spans and emit instants. The logical tree does
// not depend on the thread count.
void RunDeterministicWorkload(ThreadPool* pool) {
  trace::Span pipeline("workload");
  ParallelFor(pool, 96, [&](size_t begin, size_t end) {
    trace::Span chunk("chunk");
    for (size_t i = begin; i < end; ++i) {
      trace::Instant("item");
    }
  });
}

TEST(TraceTest, TextTreeIsByteIdenticalAcrossThreadCounts) {
  std::string tree_serial;
  {
    ScopedTracing tracing;
    RunDeterministicWorkload(nullptr);
    tree_serial = Collector::Global().TextTree();
  }
  std::string tree_parallel;
  {
    ScopedTracing tracing;
    ThreadPool pool(8);
    RunDeterministicWorkload(&pool);
    tree_parallel = Collector::Global().TextTree();
  }
  EXPECT_EQ(tree_serial, tree_parallel);
  EXPECT_NE(tree_serial.find("workload"), std::string::npos);
  EXPECT_NE(tree_serial.find("chunk"), std::string::npos);
}

TEST(TraceTest, RingBufferKeepsMostRecent) {
  trace::RingBuffer<int> ring(3);
  for (int i = 1; i <= 5; ++i) ring.Push(i);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.size(), 3u);
  std::vector<int> kept = ring.Drain();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0], 3);
  EXPECT_EQ(kept[1], 4);
  EXPECT_EQ(kept[2], 5);
}

TEST(TraceTest, RingBufferUnderCapacity) {
  trace::RingBuffer<int> ring(8);
  ring.Push(7);
  ring.Push(9);
  std::vector<int> kept = ring.Drain();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 7);
  EXPECT_EQ(kept[1], 9);
}

// A small LP whose solve needs at least one pivot: minimize -x - y
// subject to x + y <= 1, x, y in [0, 1].
Result<LpSolution> SolveSmallLp() {
  LpProblem lp;
  size_t x = lp.AddVariable(0.0, 1.0, -1.0);
  size_t y = lp.AddVariable(0.0, 1.0, -1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 1.0);
  return lp.Solve();
}

TEST(TraceTest, LpPivotTraceRecordedWhenEnabled) {
  ScopedTracing tracing;
  auto solved = SolveSmallLp();
  ASSERT_TRUE(solved.ok());
  ASSERT_FALSE(solved->pivot_trace.empty());
  EXPECT_EQ(solved->pivot_trace.size(), solved->iterations);
  for (const LpPivotStep& step : solved->pivot_trace) {
    EXPECT_TRUE(step.phase == 1 || step.phase == 2);
  }
  // The span tree shows the phase pair under lp.solve.
  std::vector<Event> events = Collector::Global().TakeEvents();
  auto spans = SpansById(events);
  const Event* solve = FindSpan(events, "lp.solve");
  const Event* phase1 = FindSpan(events, "lp.phase1");
  const Event* phase2 = FindSpan(events, "lp.phase2");
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(phase1, nullptr);
  ASSERT_NE(phase2, nullptr);
  EXPECT_EQ(phase1->parent, solve->id);
  EXPECT_EQ(phase2->parent, solve->id);
  bool saw_pivot_instant = false;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kInstant && e.name == "lp.pivot") {
      saw_pivot_instant = true;
    }
  }
  EXPECT_TRUE(saw_pivot_instant);
}

TEST(TraceTest, LpPivotTraceEmptyWhenDisabled) {
  Collector::Global().Disable();
  auto solved = SolveSmallLp();
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved->pivot_trace.empty());
}

TEST(TraceTest, SatStepTraceRecordedWhenEnabled) {
  ScopedTracing tracing;
  SatSolver solver(3);
  solver.AddClause({MakeLit(0, true), MakeLit(1, true)});
  solver.AddClause({MakeLit(0, false), MakeLit(2, true)});
  solver.AddClause({MakeLit(1, false), MakeLit(2, false)});
  auto solved = solver.Solve();
  ASSERT_TRUE(solved.ok());
  ASSERT_TRUE(solved->satisfiable);
  ASSERT_FALSE(solved->step_trace.empty());
  size_t decisions = 0;
  size_t propagations = 0;
  for (const SatStep& step : solved->step_trace) {
    if (step.kind == SatStep::Kind::kDecision) ++decisions;
    if (step.kind == SatStep::Kind::kPropagation) ++propagations;
  }
  EXPECT_EQ(decisions, solved->decisions);
  EXPECT_EQ(propagations, solved->propagations);
  const Event* solve =
      FindSpan(Collector::Global().TakeEvents(), "sat.solve");
  ASSERT_NE(solve, nullptr);
}

TEST(TraceTest, SatStepTrailDepthConvention) {
  // Pins the SatStep::trail_depth convention documented in sat_backend.h
  // for BOTH backends: decisions and propagations record the trail
  // length immediately before their own assignment lands; a backtrack
  // records the post-unwind length. Replaying the trace with a simulated
  // trail length must therefore match every recorded depth. DPLL's
  // backtrack step carries the chronological flip (one assignment lands
  // as part of the step); CDCL's backjump is a pure unwind whose
  // asserting literal arrives as a separate propagation step.
  for (const std::string& backend : {std::string("dpll"),
                                     std::string("cdcl")}) {
    ScopedTracing tracing;
    // Pigeonhole 4->3: no unit clauses (the replayed trail starts
    // empty), UNSAT, and small enough that CDCL never restarts.
    const uint32_t pigeons = 4;
    const uint32_t holes = 3;
    SatSolver solver(pigeons * holes);
    for (uint32_t p = 0; p < pigeons; ++p) {
      std::vector<Lit> somewhere;
      for (uint32_t h = 0; h < holes; ++h) {
        somewhere.push_back(MakeLit(p * holes + h, true));
      }
      solver.AddClause(somewhere);
    }
    for (uint32_t h = 0; h < holes; ++h) {
      for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
        for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
          solver.AddBinary(MakeLit(p1 * holes + h, false),
                          MakeLit(p2 * holes + h, false));
        }
      }
    }
    auto engine = MakeSatBackend(backend);
    ASSERT_TRUE(engine.ok());
    auto solved = solver.SolveWith(**engine, {});
    ASSERT_TRUE(solved.ok());
    EXPECT_FALSE(solved->satisfiable);
    ASSERT_LE(solved->step_trace.size(), kSatStepTraceCapacity)
        << backend << ": trace truncation would break the replay";
    size_t trail = 0;
    size_t backtracks_seen = 0;
    for (const SatStep& step : solved->step_trace) {
      switch (step.kind) {
        case SatStep::Kind::kDecision:
        case SatStep::Kind::kPropagation:
          EXPECT_EQ(step.trail_depth, trail)
              << backend << ": pre-push depth on var " << step.var;
          ++trail;
          break;
        case SatStep::Kind::kBacktrack:
          ++backtracks_seen;
          EXPECT_LT(step.trail_depth, trail)
              << backend << ": a backtrack must shrink the trail";
          trail = step.trail_depth;
          if (backend == "dpll") ++trail;  // the flip lands with the step
          break;
      }
    }
    EXPECT_GT(backtracks_seen, 0u) << backend;
    Collector::Global().TakeEvents();
  }
}

TEST(TraceTest, SatStepTraceEmptyWhenDisabled) {
  Collector::Global().Disable();
  SatSolver solver(2);
  solver.AddClause({MakeLit(0, true), MakeLit(1, true)});
  auto solved = solver.Solve();
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved->step_trace.empty());
}

TEST(TraceTest, DroppedEventsAreCounted) {
  ScopedTracing tracing(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) trace::Instant("burst");
  EXPECT_EQ(Collector::Global().TakeEvents().size(), 4u);
  EXPECT_EQ(Collector::Global().dropped(), 6u);
}

}  // namespace
}  // namespace pso
