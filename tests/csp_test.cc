// Tests for the count-constraint CSP solver.

#include <gtest/gtest.h>

#include "solver/csp.h"

namespace pso {
namespace {

TEST(CspTest, UnconstrainedEnumeratesMultisets) {
  // 2 variables over 3 values: C(3+2-1, 2) = 6 multisets.
  CountCsp csp(2, 3);
  CspStats stats;
  auto sols = csp.Enumerate(100, 100000, &stats);
  EXPECT_EQ(sols.size(), 6u);
  EXPECT_TRUE(stats.complete);
  for (const auto& s : sols) {
    ASSERT_EQ(s.size(), 2u);
    EXPECT_LE(s[0], s[1]);  // symmetry-broken: non-decreasing
  }
}

TEST(CspTest, ExactCountPinsSolution) {
  // 3 vars over {0,1}; exactly two 1s -> unique multiset {0,1,1}.
  CountCsp csp(3, 2);
  csp.AddExactCountConstraint({false, true}, 2);
  CspStats stats;
  auto sols = csp.Enumerate(10, 100000, &stats);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], (std::vector<size_t>{0, 1, 1}));
  EXPECT_TRUE(stats.complete);
}

TEST(CspTest, MultipleConstraintsIntersect) {
  // 4 vars over {0,1,2}; exactly one 0, exactly one 1 => {0,1,2,2}.
  CountCsp csp(4, 3);
  csp.AddExactCountConstraint({true, false, false}, 1);
  csp.AddExactCountConstraint({false, true, false}, 1);
  CspStats stats;
  auto sols = csp.Enumerate(10, 100000, &stats);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], (std::vector<size_t>{0, 1, 2, 2}));
}

TEST(CspTest, InfeasibleHasNoSolutions) {
  CountCsp csp(2, 2);
  csp.AddExactCountConstraint({false, true}, 3);  // need three 1s from two
  CspStats stats;
  auto sols = csp.Enumerate(10, 100000, &stats);
  EXPECT_TRUE(sols.empty());
  EXPECT_TRUE(stats.complete);
  EXPECT_FALSE(csp.IsSatisfiable());
}

TEST(CspTest, IntervalConstraintsWidenSolutionSpace) {
  CountCsp exact(3, 2);
  exact.AddExactCountConstraint({false, true}, 1);
  CountCsp slack(3, 2);
  slack.AddCountConstraint({false, true}, 0, 2);
  CspStats s1;
  CspStats s2;
  auto e = exact.Enumerate(100, 100000, &s1);
  auto w = slack.Enumerate(100, 100000, &s2);
  EXPECT_LT(e.size(), w.size());
}

TEST(CspTest, SolutionCapReported) {
  CountCsp csp(3, 4);  // 20 multisets
  CspStats stats;
  auto sols = csp.Enumerate(5, 100000, &stats);
  EXPECT_EQ(sols.size(), 5u);
  EXPECT_FALSE(stats.complete);
}

TEST(CspTest, NodeCapReported) {
  CountCsp csp(6, 6);
  CspStats stats;
  csp.Enumerate(100000, 10, &stats);
  EXPECT_FALSE(stats.complete);
  EXPECT_LE(stats.nodes, 11u);
}

TEST(CspTest, PruningCutsSearch) {
  // A constraint violated at depth 1 should keep node count tiny compared
  // to the full tree.
  CountCsp csp(4, 10);
  csp.AddExactCountConstraint(std::vector<bool>(10, true), 0);  // impossible
  CspStats stats;
  auto sols = csp.Enumerate(10, 1000000, &stats);
  EXPECT_TRUE(sols.empty());
  EXPECT_LT(stats.nodes, 50u);
}

TEST(CspTest, SingleVariable) {
  CountCsp csp(1, 5);
  csp.AddExactCountConstraint({false, false, false, true, false}, 1);
  CspStats stats;
  auto sols = csp.Enumerate(10, 1000, &stats);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0][0], 3u);
}

// Property: solutions returned always satisfy every constraint.
class CspVerifyTest : public ::testing::TestWithParam<int> {};

TEST_P(CspVerifyTest, SolutionsSatisfyConstraints) {
  const int seed = GetParam();
  const size_t vars = 4 + seed % 3;
  const size_t domain = 5;
  CountCsp csp(vars, domain);
  // Deterministic pseudo-random constraints from the seed.
  std::vector<std::vector<bool>> masks;
  std::vector<std::pair<int64_t, int64_t>> bounds;
  for (int c = 0; c < 3; ++c) {
    std::vector<bool> mask(domain);
    for (size_t v = 0; v < domain; ++v) {
      mask[v] = ((seed * 7 + c * 13 + static_cast<int>(v) * 31) % 3) == 0;
    }
    int64_t lo = c % 2;
    int64_t hi = lo + 2;
    csp.AddCountConstraint(mask, lo, hi);
    masks.push_back(std::move(mask));
    bounds.emplace_back(lo, hi);
  }
  CspStats stats;
  auto sols = csp.Enumerate(50, 500000, &stats);
  for (const auto& sol : sols) {
    for (size_t c = 0; c < masks.size(); ++c) {
      int64_t count = 0;
      for (size_t v : sol) count += masks[c][v] ? 1 : 0;
      EXPECT_GE(count, bounds[c].first);
      EXPECT_LE(count, bounds[c].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CspVerifyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pso
