// Tests for the query service stack: budget ledger semantics (including
// the two-racers-one-epsilon ordering), transcript replay determinism at
// any thread count, the wire protocol, and a loopback socket smoke test.

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "dp/budget.h"
#include "gtest/gtest.h"
#include "recon/oracle.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/query_service.h"
#include "service/server.h"
#include "service/wire.h"

namespace pso {
namespace {

using service::Decoder;
using service::InProcessTransport;
using service::LoadGenOptions;
using service::QueryOutcome;
using service::QueryService;
using service::QueryServiceOptions;
using service::Transcript;

TEST(BudgetLedgerTest, ChargesUntilExhausted) {
  dp::BudgetLedger ledger(1.0);
  for (uint64_t k = 0; k < 4; ++k) {
    Result<uint64_t> ordinal = ledger.Charge(7, 0.25);
    ASSERT_TRUE(ordinal.ok());
    EXPECT_EQ(*ordinal, k);  // ordinals are the per-client answer index
  }
  Result<uint64_t> over = ledger.Charge(7, 0.25);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ledger.ClientState(7).answered, 4u);
  EXPECT_EQ(ledger.ClientState(7).rejected, 1u);
  EXPECT_EQ(ledger.TotalAnswered(), 4u);
  EXPECT_EQ(ledger.TotalRejected(), 1u);
}

TEST(BudgetLedgerTest, ClientsAreIndependent) {
  dp::BudgetLedger ledger(0.5);
  ASSERT_TRUE(ledger.Charge(1, 0.5).ok());
  EXPECT_FALSE(ledger.Charge(1, 0.5).ok());
  // Client 2's budget is untouched by client 1's exhaustion.
  ASSERT_TRUE(ledger.Charge(2, 0.5).ok());
}

TEST(BudgetLedgerTest, RejectsNegativeEpsilon) {
  dp::BudgetLedger ledger(1.0);
  Result<uint64_t> bad = ledger.Charge(1, -0.1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(BudgetLedgerTest, UnlimitedWhenCapNonPositive) {
  dp::BudgetLedger ledger(0.0);
  for (int k = 0; k < 100; ++k) ASSERT_TRUE(ledger.Charge(3, 10.0).ok());
  EXPECT_EQ(ledger.TotalRejected(), 0u);
}

// Two threads race one client's LAST epsilon: whatever the interleaving,
// exactly one wins the charge and exactly one gets kResourceExhausted.
// Run under TSan (label: service) this also proves the ledger's locking.
TEST(BudgetLedgerTest, TwoRacersForLastEpsilonExactlyOneRejected) {
  for (int round = 0; round < 20; ++round) {
    dp::BudgetLedger ledger(1.0);
    ASSERT_TRUE(ledger.Charge(5, 0.5).ok());  // half the budget is gone
    ThreadPool pool(2);
    std::atomic<int> ok_count{0};
    std::atomic<int> exhausted_count{0};
    {
      TaskGroup group(&pool);
      for (int t = 0; t < 2; ++t) {
        group.Submit([&ledger, &ok_count, &exhausted_count] {
          Result<uint64_t> r = ledger.Charge(5, 0.5);
          if (r.ok()) {
            ok_count.fetch_add(1);
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            exhausted_count.fetch_add(1);
          }
        });
      }
      group.Wait();
    }
    EXPECT_EQ(ok_count.load(), 1);
    EXPECT_EQ(exhausted_count.load(), 1);
    EXPECT_EQ(ledger.ClientState(5).answered, 2u);
    EXPECT_EQ(ledger.ClientState(5).rejected, 1u);
  }
}

TEST(QueryServiceTest, ExactAnswersAreSubsetSums) {
  std::vector<uint8_t> secret = {1, 0, 1, 1, 0, 0, 1, 0};
  QueryService svc(secret, QueryServiceOptions{});
  recon::SubsetQuery all(8, 1);
  QueryOutcome a = svc.Answer(1, all);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 4.0);
  recon::SubsetQuery none(8, 0);
  a = svc.Answer(1, none);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(*a, 0.0);
  QueryOutcome wrong = svc.Answer(1, recon::SubsetQuery(5, 1));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, BatchStraddlingBudgetGetsPartialAnswers) {
  QueryServiceOptions opts;
  opts.eps_per_query = 0.5;
  opts.client_budget_eps = 1.0;  // two queries fit
  QueryService svc(std::vector<uint8_t>(16, 1), opts);
  std::vector<recon::SubsetQuery> batch(5, recon::SubsetQuery(16, 1));
  std::vector<QueryOutcome> outcomes = svc.AnswerBatch(9, batch);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  for (size_t i = 2; i < 5; ++i) {
    ASSERT_FALSE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(svc.queries_answered(), 2u);
  EXPECT_EQ(svc.queries_rejected(), 3u);
}

// DP noise is keyed to (noise_seed, client, per-client ordinal): the
// same client asking the same queries in the same order gets the same
// released values in a fresh service instance.
TEST(QueryServiceTest, NoiseIsReplayableFromSeeds) {
  QueryServiceOptions opts;
  opts.eps_per_query = 0.5;
  opts.noise_seed = 42;
  std::vector<uint8_t> secret = {1, 0, 1, 0, 1, 0};
  recon::SubsetQuery q = {1, 1, 0, 0, 1, 1};
  QueryService first(secret, opts);
  QueryService second(secret, opts);
  for (int k = 0; k < 5; ++k) {
    QueryOutcome a = first.Answer(3, q);
    QueryOutcome b = second.Answer(3, q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);  // bitwise: same stream, same ordinal
  }
  // A different client draws from a different stream.
  QueryOutcome other = first.Answer(4, q);
  ASSERT_TRUE(other.ok());
  QueryOutcome replay = second.Answer(3, q);
  ASSERT_TRUE(replay.ok());
  EXPECT_NE(*other, *replay);
}

Transcript MustRunLoad(QueryService* svc, ThreadPool* pool,
                       size_t num_clients = 12, size_t qpc = 6) {
  LoadGenOptions opts;
  opts.n = svc->n();
  opts.num_clients = num_clients;
  opts.queries_per_client = qpc;
  opts.batch_size = 4;
  opts.query_seed = 99;
  opts.pool = pool;
  Result<Transcript> t = service::RunLoad(
      opts, [svc](uint64_t) -> std::unique_ptr<service::QueryTransport> {
        return std::make_unique<InProcessTransport>(svc);
      });
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

// The tentpole determinism claim: the full recorded transcript is
// bit-identical at any thread count, DP noise included.
TEST(QueryServiceTest, TranscriptReplayIsThreadCountInvariant) {
  QueryServiceOptions opts;
  opts.eps_per_query = 0.25;
  opts.client_budget_eps = 1.0;  // 4 of the 6 queries answered per client
  opts.noise_seed = 7;
  Rng rng(11);
  std::vector<uint8_t> secret = recon::RandomBits(24, rng);

  QueryService serial_svc(secret, opts);
  Transcript serial = MustRunLoad(&serial_svc, nullptr);

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    QueryService svc(secret, opts);
    Transcript parallel = MustRunLoad(&svc, &pool);
    ASSERT_EQ(parallel.entries.size(), serial.entries.size());
    for (size_t i = 0; i < serial.entries.size(); ++i) {
      EXPECT_EQ(parallel.entries[i].query, serial.entries[i].query);
      ASSERT_EQ(parallel.entries[i].answered, serial.entries[i].answered);
      if (serial.entries[i].answered) {
        // Bitwise-equal doubles, not approximately equal.
        EXPECT_EQ(parallel.entries[i].answer, serial.entries[i].answer)
            << "entry " << i;
      } else {
        EXPECT_EQ(parallel.entries[i].error, serial.entries[i].error);
      }
    }
    EXPECT_EQ(parallel.answered(), serial.answered());
    EXPECT_EQ(parallel.rejected(), serial.rejected());
  }
  // Budget arithmetic: 4 answered + 2 rejected per client, every client.
  EXPECT_EQ(serial.answered(), 12u * 4u);
  EXPECT_EQ(serial.rejected(), 12u * 2u);
}

TEST(QueryServiceTest, AsyncBatchExecutorMatchesDirectCalls) {
  QueryServiceOptions opts;
  opts.eps_per_query = 0.5;
  opts.noise_seed = 3;
  std::vector<uint8_t> secret = {1, 1, 0, 0, 1, 0, 1, 0};
  std::vector<recon::SubsetQuery> batch = {{1, 1, 1, 1, 0, 0, 0, 0},
                                           {0, 0, 1, 1, 1, 1, 0, 0}};
  QueryService direct_svc(secret, opts);
  std::vector<QueryOutcome> direct = direct_svc.AnswerBatch(1, batch);

  ThreadPool pool(2);
  QueryService async_svc(secret, opts);
  service::AsyncBatchExecutor executor(&async_svc, &pool);
  Mutex mu;
  std::vector<QueryOutcome> async_outcomes;
  executor.Submit(1, batch, [&](std::vector<QueryOutcome> got) {
    MutexLock lock(mu);
    async_outcomes = std::move(got);
  });
  executor.Drain();
  MutexLock lock(mu);
  ASSERT_EQ(async_outcomes.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    ASSERT_TRUE(async_outcomes[i].ok());
    EXPECT_EQ(*async_outcomes[i], *direct[i]);
  }
}

// Exact service -> perfect reconstruction from the transcript alone;
// DP service -> degraded reconstruction and budget rejections.
TEST(QueryServiceTest, TranscriptDecodeEndToEnd) {
  Rng rng(5);
  std::vector<uint8_t> secret = recon::RandomBits(24, rng);

  QueryService exact(secret, QueryServiceOptions{});
  Transcript exact_t = MustRunLoad(&exact, nullptr, /*num_clients=*/20,
                                   /*qpc=*/8);
  Result<recon::Reconstruction> exact_rec =
      service::DecodeTranscript(exact_t, Decoder::kLp);
  ASSERT_TRUE(exact_rec.ok()) << exact_rec.status().ToString();
  EXPECT_DOUBLE_EQ(recon::FractionAgree(exact_rec->estimate, secret), 1.0);

  QueryServiceOptions dp;
  dp.eps_per_query = 0.1;  // heavy noise: scale-10 Laplace per answer
  dp.client_budget_eps = 0.5;
  dp.noise_seed = 6;
  QueryService noisy(secret, dp);
  Transcript noisy_t = MustRunLoad(&noisy, nullptr, /*num_clients=*/20,
                                   /*qpc=*/8);
  EXPECT_GT(noisy_t.rejected(), 0u);
  Result<recon::Reconstruction> noisy_rec =
      service::DecodeTranscript(noisy_t, Decoder::kLp);
  ASSERT_TRUE(noisy_rec.ok()) << noisy_rec.status().ToString();
  EXPECT_LT(recon::FractionAgree(noisy_rec->estimate, secret), 1.0);
}

TEST(QueryServiceTest, DecodeEmptyTranscriptFailsCleanly) {
  Transcript empty;
  empty.n = 8;
  empty.num_clients = 1;
  empty.queries_per_client = 1;
  empty.entries.resize(1);  // recorded but never answered
  Result<recon::Reconstruction> rec =
      service::DecodeTranscript(empty, Decoder::kLeastSquares);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WireTest, QueryLineRoundTrips) {
  recon::SubsetQuery q = {1, 0, 0, 1, 1};
  std::string line = service::FormatQueryLine(12, q);
  EXPECT_EQ(line, "Q 12 10011");
  Result<service::WireQuery> parsed = service::ParseQueryLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->client, 12u);
  EXPECT_EQ(parsed->query, q);
  EXPECT_FALSE(service::ParseQueryLine("Q 12").ok());
  EXPECT_FALSE(service::ParseQueryLine("Q x 101").ok());
  EXPECT_FALSE(service::ParseQueryLine("Q 1 102").ok());
}

TEST(WireTest, AnswerLineRoundTripsExactly) {
  const double value = 123.000000000000271;  // needs all 17 digits
  std::string line = service::FormatAnswerLine(3, Result<double>(value));
  Result<Result<double>> parsed = service::ParseAnswerLine(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->ok());
  EXPECT_EQ(**parsed, value);  // bitwise round-trip through %.17g
}

TEST(WireTest, ErrorLineCarriesCodeAndMessage) {
  Result<double> refusal(Status::ResourceExhausted("client 3 over budget"));
  std::string line = service::FormatAnswerLine(3, refusal);
  Result<Result<double>> parsed = service::ParseAnswerLine(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parsed->status().message(), "client 3 over budget");
  EXPECT_FALSE(service::ParseAnswerLine("X 1 2").ok());
}

TEST(WireTest, InfoLineRoundTrips) {
  service::ServiceInfo info;
  info.n = 48;
  info.eps_per_query = 0.25;
  info.client_budget_eps = 2.0;
  info.max_batch = 64;
  Result<service::ServiceInfo> parsed =
      service::ParseInfoLine(service::FormatInfoLine(info));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->n, 48u);
  EXPECT_EQ(parsed->eps_per_query, 0.25);
  EXPECT_EQ(parsed->client_budget_eps, 2.0);
  EXPECT_EQ(parsed->max_batch, 64u);
}

// Socket smoke: serve on an ephemeral loopback port, attack through
// SocketTransport, and require the socket transcript to match the
// in-process transcript bit for bit. Skips when the sandbox forbids
// loopback sockets.
TEST(QueryServerTest, SocketTranscriptMatchesInProcess) {
  QueryServiceOptions opts;
  opts.eps_per_query = 0.25;
  opts.client_budget_eps = 1.5;
  opts.noise_seed = 21;
  Rng rng(13);
  std::vector<uint8_t> secret = recon::RandomBits(16, rng);

  QueryService socket_svc(secret, opts);
  ThreadPool handlers(2);
  service::QueryServerOptions sopts;
  sopts.pool = &handlers;
  service::QueryServer server(&socket_svc, sopts);
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }
  ThreadPool accept_thread(1);
  TaskGroup accept_group(&accept_thread);
  accept_group.Submit([&server] { server.Run(); });

  const int port = server.port();
  {
    // Scoped: the probe connection must close before RequestShutdown,
    // or the server (correctly) lingers until its idle-read timeout.
    Result<std::unique_ptr<service::SocketTransport>> probe =
        service::SocketTransport::Connect(port);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    Result<service::ServiceInfo> info = (*probe)->Info();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->n, 16u);
    EXPECT_EQ(info->eps_per_query, 0.25);
  }

  LoadGenOptions lopts;
  lopts.n = 16;
  lopts.num_clients = 6;
  lopts.queries_per_client = 8;  // budget admits 6, rejects 2
  lopts.batch_size = 4;
  lopts.query_seed = 17;
  Result<Transcript> via_socket = service::RunLoad(
      lopts, [port](uint64_t) -> std::unique_ptr<service::QueryTransport> {
        Result<std::unique_ptr<service::SocketTransport>> conn =
            service::SocketTransport::Connect(port);
        if (!conn.ok()) return nullptr;
        return std::move(conn).value();
      });
  ASSERT_TRUE(via_socket.ok()) << via_socket.status().ToString();

  server.RequestShutdown();
  accept_group.Wait();

  QueryService inproc_svc(secret, opts);
  Result<Transcript> in_process = service::RunLoad(
      lopts,
      [&inproc_svc](uint64_t) -> std::unique_ptr<service::QueryTransport> {
        return std::make_unique<InProcessTransport>(&inproc_svc);
      });
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();

  ASSERT_EQ(via_socket->entries.size(), in_process->entries.size());
  for (size_t i = 0; i < in_process->entries.size(); ++i) {
    ASSERT_EQ(via_socket->entries[i].answered,
              in_process->entries[i].answered);
    if (in_process->entries[i].answered) {
      EXPECT_EQ(via_socket->entries[i].answer, in_process->entries[i].answer)
          << "entry " << i;  // %.17g wire format must not lose bits
    } else {
      EXPECT_EQ(via_socket->entries[i].error, in_process->entries[i].error);
    }
  }
  EXPECT_GT(via_socket->rejected(), 0u);
}

}  // namespace
}  // namespace pso
