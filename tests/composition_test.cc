// Tests for the Theorem 2.8 composition attacks on count mechanisms.

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "pso/composition_attack.h"

namespace pso {
namespace {

Dataset SampleGic(size_t n, uint64_t seed) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(seed);
  return u.distribution.SampleDataset(n, rng);
}

TEST(AdaptiveAttackTest, IsolatesWithLogarithmicQueries) {
  Dataset x = SampleGic(500, 1);
  Rng rng(2);
  const double tau = 1.0 / 5000.0;
  auto attack = AdaptiveCountAttack(x, tau, /*max_queries=*/200, rng);
  ASSERT_TRUE(attack.has_value());
  EXPECT_TRUE(Isolates(*attack->predicate, x));
  EXPECT_LE(attack->design_weight, tau);
  // ~ log2(1/tau) + small overhead for disambiguating among n records.
  EXPECT_LE(attack->count_queries,
            static_cast<size_t>(std::log2(1.0 / tau)) + 25);
}

TEST(AdaptiveAttackTest, QueryBudgetEnforced) {
  Dataset x = SampleGic(500, 3);
  Rng rng(4);
  auto attack = AdaptiveCountAttack(x, 1e-6, /*max_queries=*/3, rng);
  EXPECT_FALSE(attack.has_value());
}

TEST(AdaptiveAttackTest, WorksAtVerySmallTargetWeights) {
  Dataset x = SampleGic(300, 5);
  Rng rng(6);
  // Negligible-in-n^2 scale.
  const double tau = 1e-8;
  auto attack = AdaptiveCountAttack(x, tau, 200, rng);
  ASSERT_TRUE(attack.has_value());
  EXPECT_TRUE(Isolates(*attack->predicate, x));
  EXPECT_LE(attack->design_weight, tau);
}

TEST(BucketAttackTest, SingletonBucketIsolates) {
  Dataset x = SampleGic(200, 7);
  Rng rng(8);
  auto attack = BucketCountAttack(x, /*num_buckets=*/4096, rng);
  ASSERT_TRUE(attack.has_value());
  EXPECT_TRUE(Isolates(*attack->predicate, x));
  EXPECT_DOUBLE_EQ(attack->design_weight, 1.0 / 4096.0);
  EXPECT_EQ(attack->count_queries, 4096u);
}

TEST(BucketAttackTest, TooFewBucketsLikelyFails) {
  // With 2 buckets and 200 records there is never a singleton.
  Dataset x = SampleGic(200, 9);
  Rng rng(10);
  auto attack = BucketCountAttack(x, 2, rng);
  EXPECT_FALSE(attack.has_value());
}

// Theorem 2.8 headline: the adaptive composition of individually-secure
// count mechanisms breaks PSO security almost always.
TEST(CompositionGameTest, AdaptiveSuccessNearCertain) {
  Universe u = MakeGicMedicalUniverse(100);
  auto result = RunCompositionGame(u.distribution, /*n=*/400, /*trials=*/50,
                                   /*adaptive=*/true,
                                   /*weight_threshold=*/1.0 / 4000.0,
                                   /*max_queries=*/200, /*seed=*/11);
  EXPECT_GT(result.pso_success.rate(), 0.9);
  // Against a baseline of at most n*tau = 0.1.
  EXPECT_LT(result.baseline, 0.11);
  // Mean query count stays logarithmic.
  EXPECT_LT(result.queries_used.mean(), 40.0);
}

TEST(CompositionGameTest, NonAdaptiveAlsoSucceeds) {
  Universe u = MakeGicMedicalUniverse(100);
  auto result = RunCompositionGame(u.distribution, 300, 40,
                                   /*adaptive=*/false,
                                   /*weight_threshold=*/1.0 / 3000.0, 0, 12);
  EXPECT_GT(result.pso_success.rate(), 0.9);
}

// Property sweep: success persists as the threshold shrinks (the attack
// only pays ~1 extra query per halving; the baseline collapses linearly).
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, AdaptiveAttackSurvives) {
  const double tau = GetParam();
  Universe u = MakeGicMedicalUniverse(100);
  auto result = RunCompositionGame(u.distribution, 300, 30, true, tau, 300,
                                   /*seed=*/13);
  EXPECT_GT(result.pso_success.rate(), 0.85) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(Taus, ThresholdSweep,
                         ::testing::Values(1e-3, 1e-4, 1e-5, 1e-7));

}  // namespace
}  // namespace pso
