// Tests for statistics utilities and the baseline isolation curve of
// Section 2.2.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace pso {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleObservationHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// Chunked accumulation (the parallel trial runner's merge step) must
// reproduce the single-stream statistics exactly.
TEST(RunningStatsTest, MergeMatchesSingleStream) {
  std::vector<double> xs;
  uint64_t state = 0x9E3779B97F4A7C15ull;  // cheap deterministic values
  for (int i = 0; i < 257; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    xs.push_back(static_cast<double>(state >> 11) / 9.0e15 - 0.5);
  }
  RunningStats whole;
  for (double x : xs) whole.Add(x);
  // Merge uneven chunks (including a chunk of size 1).
  RunningStats merged;
  size_t sizes[] = {100, 1, 56, 100};
  size_t pos = 0;
  for (size_t len : sizes) {
    RunningStats chunk;
    for (size_t i = 0; i < len; ++i) chunk.Add(xs[pos++]);
    merged.Merge(chunk);
  }
  ASSERT_EQ(pos, xs.size());
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(RunningStatsTest, MergeEmptyChunksIsIdentity) {
  RunningStats s;
  s.Add(1.5);
  s.Add(-2.5);
  RunningStats empty;
  RunningStats copy = s;
  copy.Merge(empty);  // s + 0 = s
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), s.mean());
  EXPECT_DOUBLE_EQ(copy.variance(), s.variance());
  RunningStats other;  // 0 + s = s
  other.Merge(s);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), s.mean());
  EXPECT_DOUBLE_EQ(other.min(), -2.5);
  EXPECT_DOUBLE_EQ(other.max(), 1.5);
  RunningStats both;  // 0 + 0 = 0
  both.Merge(empty);
  EXPECT_EQ(both.count(), 0u);
}

TEST(RunningStatsTest, MergeSingleElementChunks) {
  // Degenerate chunking: every chunk holds one observation.
  RunningStats whole;
  RunningStats merged;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    whole.Add(x);
    RunningStats one;
    one.Add(x);
    merged.Merge(one);
  }
  EXPECT_EQ(merged.count(), 8u);
  EXPECT_DOUBLE_EQ(merged.mean(), 5.0);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
}

TEST(BernoulliEstimatorTest, MergeSumsCounts) {
  BernoulliEstimator a;
  a.AddBatch(3, 10);
  BernoulliEstimator b;
  b.AddBatch(5, 6);
  a.Merge(b);
  EXPECT_EQ(a.trials(), 16u);
  EXPECT_EQ(a.successes(), 8u);
  EXPECT_DOUBLE_EQ(a.rate(), 0.5);
  BernoulliEstimator empty;
  a.Merge(empty);
  EXPECT_EQ(a.trials(), 16u);
}

TEST(BernoulliEstimatorTest, RateAndBatch) {
  BernoulliEstimator e;
  e.Add(true);
  e.Add(false);
  e.AddBatch(3, 8);
  EXPECT_EQ(e.trials(), 10u);
  EXPECT_EQ(e.successes(), 4u);
  EXPECT_DOUBLE_EQ(e.rate(), 0.4);
}

TEST(BernoulliEstimatorTest, WilsonIntervalContainsRate) {
  BernoulliEstimator e;
  e.AddBatch(30, 100);
  Interval ci = e.WilsonInterval();
  EXPECT_TRUE(ci.Contains(0.3));
  EXPECT_GT(ci.lo, 0.2);
  EXPECT_LT(ci.hi, 0.42);
}

TEST(BernoulliEstimatorTest, WilsonAtZeroSuccesses) {
  BernoulliEstimator e;
  e.AddBatch(0, 1000);
  Interval ci = e.WilsonInterval();
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 0.005);  // informative even with 0 hits
  EXPECT_GT(ci.hi, 0.0);
}

TEST(BernoulliEstimatorTest, WilsonShrinksWithTrials) {
  BernoulliEstimator small;
  small.AddBatch(5, 10);
  BernoulliEstimator large;
  large.AddBatch(500, 1000);
  EXPECT_LT(large.WilsonInterval().hi - large.WilsonInterval().lo,
            small.WilsonInterval().hi - small.WilsonInterval().lo);
}

TEST(BernoulliEstimatorTest, NoTrialsGivesVacuousInterval) {
  BernoulliEstimator e;
  Interval ci = e.WilsonInterval();
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

// Section 2.2: a weight-1/n predicate isolates with probability
// n * (1/n) * (1 - 1/n)^{n-1} -> 1/e ~ 37%; the paper computes ~37% for
// the birthday example with n = 365.
TEST(BaselineIsolationTest, BirthdayExampleIs37Percent) {
  double p = BaselineIsolationProbability(365, 1.0 / 365.0);
  EXPECT_NEAR(p, 0.3688, 5e-4);
}

TEST(BaselineIsolationTest, PeaksAtOneOverN) {
  const size_t n = 1000;
  double at_peak = BaselineIsolationProbability(n, 1.0 / n);
  EXPECT_GT(at_peak, BaselineIsolationProbability(n, 0.2 / n));
  EXPECT_GT(at_peak, BaselineIsolationProbability(n, 5.0 / n));
  EXPECT_NEAR(at_peak, std::exp(-1.0), 0.01);
}

TEST(BaselineIsolationTest, NegligibleWeightGivesNegligibleSuccess) {
  const size_t n = 1000;
  // At w = 1/n^2 the success is ~ 1/n.
  double p = BaselineIsolationProbability(n, 1.0 / (1000.0 * 1000.0));
  EXPECT_NEAR(p, 1e-3, 1e-4);
  // And it decays linearly with w below the peak.
  EXPECT_NEAR(BaselineIsolationProbability(n, 1e-8), 1e-5, 1e-6);
}

TEST(BaselineIsolationTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(BaselineIsolationProbability(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BaselineIsolationProbability(10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BaselineIsolationProbability(10, 1.0), 0.0);
}

// Heavy-weight predicates also fail to isolate (the "w = omega(log n / n)"
// side of the paper's dichotomy).
TEST(BaselineIsolationTest, HeavyPredicatesFailToo) {
  const size_t n = 1000;
  double heavy = BaselineIsolationProbability(n, 50.0 / n);
  EXPECT_LT(heavy, 1e-15);
}

TEST(QuantileTest, MedianAndInterpolation) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 0.9), 5.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

// Property sweep: Wilson interval coverage across rates.
class WilsonCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(WilsonCoverageTest, IntervalBracketsTruthInExpectation) {
  double p = GetParam();
  // With k = round(p * n) observed, the interval must contain p.
  const size_t n = 400;
  BernoulliEstimator e;
  e.AddBatch(static_cast<size_t>(p * n), n);
  EXPECT_TRUE(e.WilsonInterval().Contains(p))
      << "p=" << p << " not in interval";
}

INSTANTIATE_TEST_SUITE_P(Rates, WilsonCoverageTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5, 0.75,
                                           0.99, 1.0));

}  // namespace
}  // namespace pso
