// Tests for the PSO game runner (Definitions 2.3/2.4).

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"

namespace pso {
namespace {

PsoGameOptions FastOptions(size_t trials = 60) {
  PsoGameOptions opts;
  opts.trials = trials;
  opts.weight_pool = 30000;
  opts.seed = 42;
  return opts;
}

TEST(PsoGameTest, DefaultThresholdIsOneOverTenN) {
  Universe u = MakeBirthdayUniverse();
  PsoGame game(u.distribution, 365, FastOptions());
  EXPECT_DOUBLE_EQ(game.weight_threshold(), 1.0 / 3650.0);
}

TEST(PsoGameTest, ExplicitThresholdHonored) {
  Universe u = MakeBirthdayUniverse();
  PsoGameOptions opts = FastOptions();
  opts.weight_threshold = 1e-3;
  PsoGame game(u.distribution, 365, opts);
  EXPECT_DOUBLE_EQ(game.weight_threshold(), 1e-3);
}

TEST(PsoGameTest, DeterministicAcrossRuns) {
  Universe u = MakeBirthdayUniverse();
  auto mech = MakeCountMechanism(MakeAttributeEquals(0, 0, "birthday"),
                                 "jan1");
  auto adv = MakeTrivialHashAdversary(1.0 / 3650.0);
  PsoGame g1(u.distribution, 100, FastOptions());
  PsoGame g2(u.distribution, 100, FastOptions());
  auto r1 = g1.Run(*mech, *adv);
  auto r2 = g2.Run(*mech, *adv);
  EXPECT_EQ(r1.pso_success.successes(), r2.pso_success.successes());
  EXPECT_EQ(r1.isolation.successes(), r2.isolation.successes());
}

TEST(PsoGameTest, VerifiedWeightExactPath) {
  Universe u = MakeBirthdayUniverse();
  PsoGame game(u.distribution, 365, FastOptions());
  auto p = MakeAttributeEquals(0, 5, "birthday");
  EXPECT_NEAR(game.VerifiedWeightUpperBound(*p), 1.0 / 365.0, 1e-12);
}

TEST(PsoGameTest, VerifiedWeightMonteCarloPathIsUpperBound) {
  Universe u = MakeGicMedicalUniverse(100);
  PsoGame game(u.distribution, 100, FastOptions());
  Rng rng(1);
  UniversalHash h(rng, 1000);
  auto p = MakeHashPredicate(u.schema, h, 0);
  double bound = game.VerifiedWeightUpperBound(*p);
  EXPECT_GT(bound, 0.0005);  // at least near the true 1e-3
  EXPECT_LT(bound, 0.01);    // but a sane upper bound
}

// The birthday example (Section 2.2): a fixed-date attacker against any
// mechanism isolates ~37% of the time, but its predicate weight 1/365 is
// NOT negligible at threshold 1/3650 — so it scores zero PSO successes.
TEST(PsoGameTest, BirthdayAttackerIsolatesButWeightTooHeavy) {
  Universe u = MakeBirthdayUniverse();
  auto mech = MakeCountMechanism(MakeAttributeEquals(0, 0, "birthday"),
                                 "jan1");
  auto adv = MakeFixedValueAdversary(0, 119, "birthday");  // "Apr-30"
  PsoGame game(u.distribution, 365, FastOptions(400));
  auto result = game.Run(*mech, *adv);
  EXPECT_NEAR(result.isolation.rate(), 0.37, 0.08);
  EXPECT_EQ(result.pso_success.successes(), 0u);  // weight check fails
  EXPECT_DOUBLE_EQ(result.weights.max(), 1.0 / 365.0);
}

// Identity mechanism is blatantly not PSO-secure: the unique-record
// adversary reads x and outputs an exact-match predicate of negligible
// weight.
TEST(PsoGameTest, IdentityMechanismFails) {
  Universe u = MakeGicMedicalUniverse(100);
  auto mech = MakeIdentityMechanism();
  auto adv = MakeUniqueRecordAdversary();
  PsoGame game(u.distribution, 200, FastOptions());
  auto result = game.Run(*mech, *adv);
  EXPECT_GT(result.pso_success.rate(), 0.95);
  EXPECT_GT(result.advantage, 0.9);
}

// Theorem 2.5: the count mechanism prevents PSO — tested attackers stay at
// (or below) the trivial baseline.
TEST(PsoGameTest, CountMechanismResistsAttackers) {
  Universe u = MakeGicMedicalUniverse(100);
  auto q = MakeAttributeEquals(3, 0, "sex");
  auto mech = MakeCountMechanism(q, "sex=F");
  PsoGame game(u.distribution, 500, FastOptions(300));

  for (const AdversaryRef& adv :
       {MakeTrivialHashAdversary(1.0 / 5000.0),
        MakeCountTunedAdversary(q, "sex=F")}) {
    auto result = game.Run(*mech, *adv);
    // Success within a few points of the baseline (never far above).
    EXPECT_LT(result.pso_success.rate(), result.baseline + 0.08)
        << result.Summary();
  }
}

// Theorem 2.6: post-processing cannot create PSO risk. f(M(x)) with the
// same adversary family scores the same or less.
TEST(PsoGameTest, PostProcessingNoWorse) {
  Universe u = MakeGicMedicalUniverse(100);
  auto q = MakeAttributeEquals(3, 0, "sex");
  auto inner = MakeCountMechanism(q, "sex=F");
  // f maps the count to its parity — strictly less informative.
  auto f = [](const MechanismOutput& y) {
    const double* c = y.As<double>();
    if (c == nullptr) return MechanismOutput();
    return MechanismOutput::Of(
        static_cast<double>(static_cast<int64_t>(*c) % 2));
  };
  auto mech = MakePostProcessMechanism(inner, f, "parity");
  EXPECT_NE(mech->Name().find("parity"), std::string::npos);
  auto adv = MakeCountTunedAdversary(q, "sex=F");
  PsoGame game(u.distribution, 400, FastOptions(150));
  auto result = game.Run(*mech, *adv);
  EXPECT_LT(result.pso_success.rate(), result.baseline + 0.08);
}

// The baseline in the result matches the closed form.
TEST(PsoGameTest, BaselineMatchesClosedForm) {
  Universe u = MakeBirthdayUniverse();
  PsoGame game(u.distribution, 365, FastOptions(10));
  auto mech = MakeIdentityMechanism();
  auto adv = MakeTrivialHashAdversary(0.5);
  auto result = game.Run(*mech, *adv);
  double tau = 1.0 / 3650.0;
  EXPECT_NEAR(result.baseline, 365.0 * tau * std::pow(1.0 - tau, 364.0),
              1e-12);
}

// A trivial attacker playing exactly at the threshold achieves exactly the
// baseline (sanity of the finite-n reading of "negligible").
TEST(PsoGameTest, TrivialAttackerMatchesBaseline) {
  Universe u = MakeGicMedicalUniverse(100);
  auto mech = MakeCountMechanism(MakeAttributeEquals(3, 0, "sex"), "q");
  PsoGameOptions opts = FastOptions(500);
  opts.weight_threshold = 1.0 / 500.0;  // = 1/n: the sweet spot
  PsoGame game(u.distribution, 500, opts);
  auto adv = MakeTrivialHashAdversary(1.0 / 500.0);
  auto result = game.Run(*mech, *adv);
  // Isolation rate ~ 1/e; some trials may fail the Monte-Carlo weight
  // check at the boundary, so compare isolation (not PSO rate) to the
  // curve.
  EXPECT_NEAR(result.isolation.rate(), std::exp(-1.0), 0.07);
}

TEST(PsoGameTest, SummaryMentionsNames) {
  Universe u = MakeBirthdayUniverse();
  PsoGame game(u.distribution, 50, FastOptions(5));
  auto mech = MakeIdentityMechanism();
  auto adv = MakeUniqueRecordAdversary();
  auto result = game.Run(*mech, *adv);
  EXPECT_NE(result.Summary().find("Identity"), std::string::npos);
  EXPECT_NE(result.Summary().find("UniqueRecord"), std::string::npos);
}

}  // namespace
}  // namespace pso
