// Unit tests for the CDCL engine (solver/cdcl.h): first-UIP learning
// with backjump-to-root on learned units, restart determinism, edge-case
// instances, incremental NewVariable encoding, and the CDCL-only
// counters. Functional agreement with DPLL is covered by sat_test,
// proptest_solver_test, and the fuzz harnesses; this file pins the
// engine's own mechanics.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "solver/cdcl.h"
#include "solver/sat.h"
#include "solver/sat_backend.h"

namespace pso {
namespace {

Result<SatSolution> SolveCdcl(SatSolver& s, size_t max_decisions = 0) {
  auto backend = MakeSatBackend("cdcl");
  SatSolveOptions options;
  options.max_decisions = max_decisions;
  return s.SolveWith(**backend, options);
}

// Pigeonhole instance: `pigeons` into `holes`, UNSAT when pigeons >
// holes. Conflict-rich, so it exercises learning and restarts.
SatSolver Pigeonhole(uint32_t pigeons, uint32_t holes) {
  SatSolver s(pigeons * holes);
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (uint32_t h = 0; h < holes; ++h) {
      somewhere.push_back(MakeLit(p * holes + h, true));
    }
    s.AddClause(somewhere);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddBinary(MakeLit(p1 * holes + h, false),
                    MakeLit(p2 * holes + h, false));
      }
    }
  }
  return s;
}

TEST(CdclTest, LearnedUnitBackjumpsToRoot) {
  // x0 has the highest occurrence count and phase saving starts at true,
  // so the first decision is x0 = true. That propagates x1 and ~x1 — a
  // conflict whose first UIP is the unit ~x0, asserted at the root.
  SatSolver s(2);
  s.AddBinary(MakeLit(0, false), MakeLit(1, true));
  s.AddBinary(MakeLit(0, false), MakeLit(1, false));
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  EXPECT_FALSE(sol->assignment[0]);
  EXPECT_EQ(sol->conflicts, 1u);
  EXPECT_EQ(sol->backtracks, 1u);
  // A learned unit is a root assertion, not a stored clause.
  EXPECT_EQ(sol->learned_clauses, 0u);
}

TEST(CdclTest, LearnsClausesOnUnsatInstance) {
  SatSolver s = Pigeonhole(4, 3);
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
  EXPECT_GT(sol->conflicts, 0u);
  EXPECT_GT(sol->learned_clauses, 0u);
  // Every conflict backjumps except the final one at the root, which
  // proves UNSAT and terminates the search.
  EXPECT_EQ(sol->backtracks + 1, sol->conflicts);
}

TEST(CdclTest, BackjumpLevelsCounterAdvances) {
  const uint64_t before = metrics::GetCounter("sat.backjump_levels").value();
  SatSolver s = Pigeonhole(5, 4);
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
  // Every conflict backjumps at least one level, so the aggregate must
  // move by at least the conflict count.
  EXPECT_GE(metrics::GetCounter("sat.backjump_levels").value(),
            before + sol->conflicts);
}

TEST(CdclTest, RestartsAreDeterministic) {
  // A conflict-rich instance crossing the first Luby restart threshold:
  // two independent solves must take the identical path.
  SatSolution first;
  SatSolution second;
  for (SatSolution* out : {&first, &second}) {
    SatSolver s = Pigeonhole(7, 6);
    auto sol = SolveCdcl(s);
    ASSERT_TRUE(sol.ok());
    *out = *sol;
  }
  EXPECT_FALSE(first.satisfiable);
  EXPECT_GT(first.restarts, 0u);
  EXPECT_EQ(first.decisions, second.decisions);
  EXPECT_EQ(first.propagations, second.propagations);
  EXPECT_EQ(first.conflicts, second.conflicts);
  EXPECT_EQ(first.restarts, second.restarts);
  EXPECT_EQ(first.learned_clauses, second.learned_clauses);
}

TEST(CdclTest, EmptyFormula) {
  SatSolver s(4);
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->satisfiable);
  EXPECT_EQ(sol->decisions, 4u);  // every free variable needs a decision
}

TEST(CdclTest, UnitOnlyFormulaSolvesWithoutDecisions) {
  SatSolver s(3);
  s.AddUnit(MakeLit(0, true));
  s.AddUnit(MakeLit(1, false));
  s.AddUnit(MakeLit(2, true));
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  EXPECT_TRUE(sol->assignment[0]);
  EXPECT_FALSE(sol->assignment[1]);
  EXPECT_TRUE(sol->assignment[2]);
  EXPECT_EQ(sol->decisions, 0u);
}

TEST(CdclTest, TriviallyUnsatInstance) {
  SatSolver s(2);
  s.AddClause({});
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
  EXPECT_EQ(sol->decisions, 0u);
  EXPECT_EQ(sol->conflicts, 0u);
}

TEST(CdclTest, ContradictoryUnitsDetectedAtRoot) {
  SatSolver s(1);
  s.AddUnit(MakeLit(0, true));
  s.AddUnit(MakeLit(0, false));
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->satisfiable);
  EXPECT_EQ(sol->decisions, 0u);
}

TEST(CdclTest, NewVariableMidEncoding) {
  // Variables introduced after clauses already exist (the cardinality
  // encoders do this constantly) must be decided and reported.
  SatSolver s(2);
  s.AddBinary(MakeLit(0, true), MakeLit(1, true));
  uint32_t aux = s.NewVariable();
  ASSERT_EQ(aux, 2u);
  s.AddBinary(MakeLit(aux, true), MakeLit(0, false));
  s.AddUnit(MakeLit(aux, false));  // forces x0 false, hence x1 true
  auto sol = SolveCdcl(s);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->satisfiable);
  ASSERT_EQ(sol->assignment.size(), 3u);
  EXPECT_FALSE(sol->assignment[2]);
  EXPECT_FALSE(sol->assignment[0]);
  EXPECT_TRUE(sol->assignment[1]);
}

TEST(CdclTest, DecisionBudgetMentionsEngine) {
  SatSolver s = Pigeonhole(9, 8);
  auto sol = SolveCdcl(s, /*max_decisions=*/3);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(sol.status().ToString().find("cdcl"), std::string::npos);
}

TEST(CdclTest, SolveCountersSplitByBackend) {
  const uint64_t cdcl_before = metrics::GetCounter("sat.cdcl.solves").value();
  const uint64_t dpll_before = metrics::GetCounter("sat.dpll.solves").value();
  SatSolver s(1);
  s.AddUnit(MakeLit(0, true));
  ASSERT_TRUE(SolveCdcl(s).ok());
  EXPECT_EQ(metrics::GetCounter("sat.cdcl.solves").value(), cdcl_before + 1);
  EXPECT_EQ(metrics::GetCounter("sat.dpll.solves").value(), dpll_before);
}

}  // namespace
}  // namespace pso
