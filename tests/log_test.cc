// Tests for the structured logger (common/log.h): level filtering, JSON
// line shape, concurrent writers, and the deterministic rank-ordered mode
// that makes output byte-identical across thread counts.

#include "common/log.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace pso {
namespace {

// Routes output to the in-memory capture for the test's duration and
// restores the defaults afterwards, so tests cannot leak sink state.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log::CaptureToString(true);
    log::SetMinLevel(log::Level::kDebug);
  }
  void TearDown() override {
    log::SetDeterministic(false);
    log::TakeCaptured();
    log::CaptureToString(false);
    log::SetMinLevel(log::Level::kWarn);
  }
};

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST_F(LogTest, LevelFilteringDropsBelowMin) {
  log::SetMinLevel(log::Level::kWarn);
  PSO_LOG(DEBUG) << "dropped";
  PSO_LOG(INFO) << "dropped too";
  PSO_LOG(WARN) << "kept";
  PSO_LOG(ERROR) << "kept too";
  std::string out = log::TakeCaptured();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
  EXPECT_NE(out.find("kept too"), std::string::npos);
  EXPECT_EQ(Lines(out).size(), 2u);
}

TEST_F(LogTest, ShouldLogMatchesMinLevel) {
  log::SetMinLevel(log::Level::kInfo);
  EXPECT_FALSE(log::ShouldLog(log::Level::kDebug));
  EXPECT_TRUE(log::ShouldLog(log::Level::kInfo));
  EXPECT_TRUE(log::ShouldLog(log::Level::kError));
}

TEST_F(LogTest, JsonLineShape) {
  PSO_LOG(WARN).Field("block", 17).Field("ratio", 0.5) << "sat exhausted";
  std::string out = log::TakeCaptured();
  std::vector<std::string> captured = Lines(out);
  ASSERT_EQ(captured.size(), 1u);
  const std::string& line = captured[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"src\":\"log_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"sat exhausted\""), std::string::npos);
  EXPECT_NE(line.find("\"block\":\"17\""), std::string::npos);
  EXPECT_NE(line.find("\"ratio\":\"0.5\""), std::string::npos);
  EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"thread\":"), std::string::npos);
}

TEST_F(LogTest, MessageEscapesJsonMetacharacters) {
  PSO_LOG(WARN).Field("path", "a\"b\\c") << "line\nbreak";
  std::string out = log::TakeCaptured();
  EXPECT_NE(out.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(out.find("a\\\"b\\\\c"), std::string::npos);
}

TEST_F(LogTest, StreamedValuesFormat) {
  PSO_LOG(WARN) << "n=" << 42 << " f=" << 1.5 << " b=" << true
                << " z=" << size_t{7};
  std::string out = log::TakeCaptured();
  EXPECT_NE(out.find("n=42 f=1.5 b=true z=7"), std::string::npos);
}

TEST_F(LogTest, ParseLevelRoundTrips) {
  log::Level level = log::Level::kError;
  EXPECT_TRUE(log::ParseLevel("debug", &level));
  EXPECT_EQ(level, log::Level::kDebug);
  EXPECT_TRUE(log::ParseLevel("warn", &level));
  EXPECT_EQ(level, log::Level::kWarn);
  EXPECT_FALSE(log::ParseLevel("loud", &level));
  EXPECT_EQ(level, log::Level::kWarn);  // untouched on failure
  EXPECT_STREQ(log::LevelName(log::Level::kInfo), "info");
}

TEST_F(LogTest, ConcurrentWritersEmitOneLineEach) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        PSO_LOG(INFO).Field("t", t).Field("i", i) << "concurrent";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<std::string> lines = Lines(log::TakeCaptured());
  EXPECT_EQ(lines.size(), kThreads * kPerThread);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(LogTest, DeterministicModeOmitsRunDependentFields) {
  log::SetDeterministic(true);
  PSO_LOG(WARN) << "stable";
  log::Flush();
  std::string out = log::TakeCaptured();
  EXPECT_NE(out.find("\"msg\":\"stable\""), std::string::npos);
  EXPECT_EQ(out.find("\"ts_us\""), std::string::npos);
  EXPECT_EQ(out.find("\"thread\""), std::string::npos);
}

// The deterministic workload: chunked parallel loop logging one line per
// item, keyed by the chunk rank machinery inside ParallelFor.
std::string RunDeterministicLogWorkload(size_t threads) {
  log::SetDeterministic(true);
  auto pool = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  ParallelFor(pool.get(), 60, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      PSO_LOG(INFO).Field("item", i) << "visit";
    }
  });
  log::Flush();
  log::SetDeterministic(false);
  return log::TakeCaptured();
}

TEST_F(LogTest, DeterministicModeByteIdenticalAcrossThreadCounts) {
  std::string serial = RunDeterministicLogWorkload(1);
  std::string parallel = RunDeterministicLogWorkload(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Items must appear in index order: chunk ranks sort by chunk index and
  // in-chunk sequence numbers preserve program order.
  std::vector<std::string> lines = Lines(serial);
  ASSERT_EQ(lines.size(), 60u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"item\":\"" + std::to_string(i) + "\""),
              std::string::npos)
        << "line " << i << ": " << lines[i];
  }
}

TEST_F(LogTest, RankScopeOrdersFlushByRankNotArrival) {
  log::SetDeterministic(true);
  std::vector<uint64_t> region = log::AllocateRegionKey();
  {
    log::RankScope scope(region, 1);
    PSO_LOG(INFO) << "second";
  }
  {
    log::RankScope scope(region, 0);
    PSO_LOG(INFO) << "first";
  }
  log::Flush();
  std::string out = log::TakeCaptured();
  size_t first = out.find("\"msg\":\"first\"");
  size_t second = out.find("\"msg\":\"second\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST_F(LogTest, InitializedAfterConfiguration) {
  EXPECT_TRUE(log::Initialized());  // SetUp configured the capture sink
}

}  // namespace
}  // namespace pso
