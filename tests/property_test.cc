// Cross-module property and invariant tests: randomized configurations
// exercising algebraic laws (predicate logic), structural invariants
// (Mondrian partitions, lattice monotonicity), and decoder agreement
// (LP vs least squares).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/generators.h"
#include "kanon/mondrian.h"
#include "predicate/predicate.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "recon/attacks.h"

namespace pso {
namespace {

// --- Predicate algebra laws on random records -------------------------

class PredicateLawTest : public ::testing::TestWithParam<int> {};

TEST_P(PredicateLawTest, BooleanLawsHoldPointwise) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(900 + GetParam());
  // Random atomic predicates.
  auto random_atom = [&]() -> PredicateRef {
    size_t attr = static_cast<size_t>(
        rng.UniformUint64(u.schema.NumAttributes()));
    const Attribute& a = u.schema.attribute(attr);
    int64_t lo = rng.UniformInt(a.MinValue(), a.MaxValue());
    int64_t hi = rng.UniformInt(lo, a.MaxValue());
    return MakeAttributeRange(attr, lo, hi, a.name());
  };
  PredicateRef p = random_atom();
  PredicateRef q = random_atom();

  PredicateRef de_morgan_lhs = MakeNot(MakeAnd({p, q}));
  PredicateRef de_morgan_rhs = MakeOr({MakeNot(p), MakeNot(q)});
  PredicateRef double_neg = MakeNot(MakeNot(p));
  PredicateRef absorb = MakeAnd({p, MakeOr({p, q})});

  for (int i = 0; i < 300; ++i) {
    Record r = u.distribution.Sample(rng);
    EXPECT_EQ(de_morgan_lhs->Eval(r), de_morgan_rhs->Eval(r));
    EXPECT_EQ(double_neg->Eval(r), p->Eval(r));
    EXPECT_EQ(absorb->Eval(r), p->Eval(r));
    EXPECT_EQ(MakeAnd({p, MakeNot(p)})->Eval(r), false);
    EXPECT_EQ(MakeOr({p, MakeNot(p)})->Eval(r), true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateLawTest, ::testing::Range(0, 6));

// Exact weights respect complement and monotonicity under a product
// distribution.
TEST(PredicateWeightPropertyTest, ComplementAndMonotonicity) {
  Universe u = MakeGicMedicalUniverse(50);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    size_t attr = static_cast<size_t>(
        rng.UniformUint64(u.schema.NumAttributes()));
    const Attribute& a = u.schema.attribute(attr);
    int64_t lo = rng.UniformInt(a.MinValue(), a.MaxValue());
    int64_t hi = rng.UniformInt(lo, a.MaxValue());
    auto p = MakeAttributeRange(attr, lo, hi, a.name());
    auto not_p = MakeNot(p);
    double w = *p->ExactWeight(u.distribution);
    EXPECT_NEAR(w + *not_p->ExactWeight(u.distribution), 1.0, 1e-12);
    // Widening the range can only increase the weight.
    if (hi < a.MaxValue()) {
      auto wider = MakeAttributeRange(attr, lo, hi + 1, a.name());
      EXPECT_GE(*wider->ExactWeight(u.distribution) + 1e-15, w);
    }
  }
}

// --- Mondrian structural invariants -----------------------------------

class MondrianInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MondrianInvariantTest, PartitionIsDisjointCoveringAndTight) {
  Universe u = MakeGicMedicalUniverse(60);
  Rng rng(4000 + GetParam());
  size_t n = 150 + static_cast<size_t>(rng.UniformUint64(250));
  size_t k = 2 + static_cast<size_t>(rng.UniformUint64(8));
  Dataset data = u.distribution.SampleDataset(n, rng);
  kanon::MondrianOptions opts;
  opts.k = k;
  for (size_t a = 0; a < u.schema.NumAttributes(); ++a) {
    opts.qi_attrs.push_back(a);
  }
  auto result = kanon::MondrianAnonymize(
      data, kanon::HierarchySet::Defaults(u.schema), opts);
  ASSERT_TRUE(result.ok());

  // Classes partition [n].
  std::set<size_t> covered;
  for (const auto& cls : result->classes) {
    EXPECT_GE(cls.size(), k);
    for (size_t i : cls) EXPECT_TRUE(covered.insert(i).second);
  }
  EXPECT_EQ(covered.size(), n);

  // Every row's generalized cells cover the original record, and within a
  // class all QI cells agree.
  for (const auto& cls : result->classes) {
    const auto& rep = result->generalized.row(cls.front());
    for (size_t i : cls) {
      EXPECT_TRUE(result->generalized.Covers(i, data.record(i)));
      for (size_t a : opts.qi_attrs) {
        EXPECT_EQ(result->generalized.row(i)[a], rep[a]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MondrianInvariantTest,
                         ::testing::Range(0, 6));

// --- Decoder agreement -------------------------------------------------

TEST(DecoderAgreementTest, LpAndLsqAgreeOnEasyInstances) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    const size_t n = 32;
    auto secret = recon::RandomBits(n, rng);
    recon::BoundedNoiseOracle lp_oracle(secret, 0.5, seed);
    auto lp = recon::LpReconstruct(lp_oracle, 5 * n, rng);
    ASSERT_TRUE(lp.ok());
    recon::BoundedNoiseOracle lsq_oracle(secret, 0.5, seed + 1);
    auto lsq = recon::LeastSquaresReconstruct(lsq_oracle, 5 * n, rng);
    double lp_acc = recon::FractionAgree(lp->estimate, secret);
    double lsq_acc = recon::FractionAgree(lsq.estimate, secret);
    EXPECT_GT(lp_acc, 0.95);
    EXPECT_GT(lsq_acc, 0.95);
  }
}

// --- Game-level invariant: PSO success never exceeds isolation --------

TEST(GameInvariantTest, PsoRateBoundedByIsolationRate) {
  Universe u = MakeGicMedicalUniverse(60);
  PsoGameOptions opts;
  opts.trials = 40;
  opts.weight_pool = 20000;
  PsoGame game(u.distribution, 200, opts);
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 4, kanon::HierarchySet::Defaults(u.schema),
      {});
  for (const AdversaryRef& adv :
       {MakeKAnonHashAdversary(), MakeKAnonMinimalityAdversary(),
        MakeTrivialHashAdversary(1e-3)}) {
    auto r = game.Run(*mech, *adv);
    EXPECT_LE(r.pso_success.successes(), r.isolation.successes());
    EXPECT_EQ(r.pso_success.trials(), r.isolation.trials());
    EXPECT_GE(r.baseline, 0.0);
    EXPECT_LE(r.baseline, 1.0);
  }
}

}  // namespace
}  // namespace pso
