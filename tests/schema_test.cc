// Tests for attributes and schemas.

#include <gtest/gtest.h>
#include <cmath>


#include "data/schema.h"

namespace pso {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::Integer("age", 0, 99),
      Attribute::Categorical("sex", {"F", "M"}),
      Attribute::Categorical("disease", {"flu", "covid", "asthma"}),
  });
}

TEST(AttributeTest, IntegerDomain) {
  Attribute a = Attribute::Integer("age", 10, 20);
  EXPECT_EQ(a.DomainSize(), 11);
  EXPECT_TRUE(a.IsValid(10));
  EXPECT_TRUE(a.IsValid(20));
  EXPECT_FALSE(a.IsValid(9));
  EXPECT_FALSE(a.IsValid(21));
  EXPECT_EQ(a.ValueToString(15), "15");
}

TEST(AttributeTest, CategoricalDomain) {
  Attribute a = Attribute::Categorical("sex", {"F", "M"});
  EXPECT_EQ(a.DomainSize(), 2);
  EXPECT_EQ(a.MinValue(), 0);
  EXPECT_EQ(a.MaxValue(), 1);
  EXPECT_EQ(a.ValueToString(0), "F");
  EXPECT_EQ(a.ValueToString(1), "M");
}

TEST(AttributeTest, ValueFromStringCategorical) {
  Attribute a = Attribute::Categorical("sex", {"F", "M"});
  Result<int64_t> v = a.ValueFromString("M");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(a.ValueFromString("X").ok());
}

TEST(AttributeTest, ValueFromStringInteger) {
  Attribute a = Attribute::Integer("age", 0, 99);
  ASSERT_TRUE(a.ValueFromString("42").ok());
  EXPECT_EQ(*a.ValueFromString("42"), 42);
  EXPECT_FALSE(a.ValueFromString("200").ok());   // out of range
  EXPECT_FALSE(a.ValueFromString("abc").ok());   // not a number
  EXPECT_FALSE(a.ValueFromString("4x").ok());    // trailing junk
}

TEST(SchemaTest, IndexLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.NumAttributes(), 3u);
  ASSERT_TRUE(s.IndexOf("sex").ok());
  EXPECT_EQ(*s.IndexOf("sex"), 1u);
  EXPECT_FALSE(s.IndexOf("zip").ok());
}

TEST(SchemaTest, RecordValidation) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.IsValidRecord({42, 1, 2}));
  EXPECT_FALSE(s.IsValidRecord({42, 1}));       // wrong arity
  EXPECT_FALSE(s.IsValidRecord({42, 5, 2}));    // sex out of domain
  EXPECT_FALSE(s.IsValidRecord({-1, 1, 2}));    // age out of domain
}

TEST(SchemaTest, RecordToString) {
  Schema s = TestSchema();
  EXPECT_EQ(s.RecordToString({42, 0, 1}), "age=42, sex=F, disease=covid");
}

TEST(SchemaTest, RecordKeyDistinguishesRecords) {
  Schema s = TestSchema();
  EXPECT_EQ(s.RecordKey({1, 0, 0}), s.RecordKey({1, 0, 0}));
  EXPECT_NE(s.RecordKey({1, 0, 0}), s.RecordKey({0, 1, 0}));
  EXPECT_NE(s.RecordKey({1, 0, 0}), s.RecordKey({1, 0, 1}));
}

TEST(SchemaTest, Log2DomainSize) {
  Schema s = TestSchema();
  // 100 * 2 * 3 = 600 values -> log2(600).
  EXPECT_NEAR(s.Log2DomainSize(), std::log2(600.0), 1e-9);
}

}  // namespace
}  // namespace pso
