// The parallel substrate's headline contract: for a fixed seed, every
// experiment produces bit-for-bit identical results at ANY thread count.
// These tests run the real pipelines at 1, 2, and 8 threads and compare
// exactly (EXPECT_EQ on doubles — no tolerance), plus smoke checks on the
// counter-based stream derivation itself and a pinned-value regression
// guarding the RNG plumbing against accidental reordering.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "census/population.h"
#include "census/reconstruct.h"
#include "census/tabulator.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/generators.h"
#include "membership/membership.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/interactive.h"
#include "pso/mechanisms.h"
#include "solver/lp.h"

namespace pso {
namespace {

// The thread counts every experiment is replayed at. nullptr = serial.
std::vector<std::unique_ptr<ThreadPool>> MakePools() {
  std::vector<std::unique_ptr<ThreadPool>> pools;
  pools.push_back(nullptr);
  pools.push_back(std::make_unique<ThreadPool>(2));
  pools.push_back(std::make_unique<ThreadPool>(8));
  return pools;
}

void ExpectSameEstimator(const BernoulliEstimator& a,
                         const BernoulliEstimator& b, const char* what) {
  EXPECT_EQ(a.trials(), b.trials()) << what;
  EXPECT_EQ(a.successes(), b.successes()) << what;
}

void ExpectSameStats(const RunningStats& a, const RunningStats& b,
                     const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  // Bit-for-bit: merges happen in chunk-index order with chunk boundaries
  // that depend only on n, so even floating-point accumulation is exact.
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void ExpectSameGameResult(const PsoGameResult& a, const PsoGameResult& b) {
  ExpectSameEstimator(a.isolation, b.isolation, "isolation");
  ExpectSameEstimator(a.pso_success, b.pso_success, "pso_success");
  ExpectSameEstimator(a.weight_ok, b.weight_ok, "weight_ok");
  ExpectSameStats(a.weights, b.weights, "weights");
  EXPECT_EQ(a.baseline, b.baseline);
  EXPECT_EQ(a.advantage, b.advantage);
}

TEST(DeterminismTest, PsoGameIdenticalAcrossThreadCounts) {
  Universe u = MakeGicMedicalUniverse(100);
  auto q = MakeAttributeEquals(3, 0, "sex");
  auto mech = MakeCountMechanism(q, "sex=F");
  auto adv = MakeCountTunedAdversary(q, "sex=F");

  auto pools = MakePools();
  std::vector<PsoGameResult> results;
  for (const auto& pool : pools) {
    PsoGameOptions opts;
    opts.trials = 60;
    opts.weight_pool = 20000;
    opts.seed = 0xD17E;
    opts.pool = pool.get();
    PsoGame game(u.distribution, 200, opts);
    results.push_back(game.Run(*mech, *adv));
  }
  ExpectSameGameResult(results[0], results[1]);
  ExpectSameGameResult(results[0], results[2]);
}

TEST(DeterminismTest, InteractiveGameIdenticalAcrossThreadCounts) {
  Universe u = MakeGicMedicalUniverse(100);
  auto mech = MakeExactCountSessionMechanism();
  auto adv = MakeBinarySearchIsolationAdversary(120);

  auto pools = MakePools();
  std::vector<PsoGameResult> results;
  for (const auto& pool : pools) {
    PsoGameOptions opts;
    opts.trials = 20;
    opts.weight_pool = 20000;
    opts.seed = 0x5E55;
    opts.pool = pool.get();
    PsoGame game(u.distribution, 150, opts);
    results.push_back(game.RunInteractive(*mech, *adv));
  }
  ExpectSameGameResult(results[0], results[1]);
  ExpectSameGameResult(results[0], results[2]);
}

TEST(DeterminismTest, CensusReconstructionIdenticalAcrossThreadCounts) {
  census::PopulationOptions popts;
  popts.num_blocks = 40;
  popts.min_block_size = 2;
  popts.max_block_size = 7;
  Rng rng(0xCE25);
  census::Population pop = census::GeneratePopulation(popts, rng);
  std::vector<census::BlockTables> tables;
  tables.reserve(pop.blocks.size());
  for (const auto& b : pop.blocks) tables.push_back(census::Tabulate(b));

  auto pools = MakePools();
  std::vector<census::ReconstructionReport> reports;
  std::vector<std::vector<census::BlockReconstruction>> blocks;
  for (const auto& pool : pools) {
    census::ReconstructOptions ropts;
    ropts.pool = pool.get();
    std::vector<census::BlockReconstruction> per_block;
    reports.push_back(
        census::ReconstructPopulation(pop, tables, ropts, &per_block));
    blocks.push_back(std::move(per_block));
  }
  for (size_t v = 1; v < reports.size(); ++v) {
    EXPECT_EQ(reports[0].blocks_unique, reports[v].blocks_unique);
    EXPECT_EQ(reports[0].blocks_exhausted, reports[v].blocks_exhausted);
    EXPECT_EQ(reports[0].persons_exactly_reconstructed,
              reports[v].persons_exactly_reconstructed);
    ASSERT_EQ(blocks[0].size(), blocks[v].size());
    for (size_t b = 0; b < blocks[0].size(); ++b) {
      EXPECT_EQ(blocks[0][b].solutions_found, blocks[v][b].solutions_found);
      EXPECT_EQ(blocks[0][b].reconstructed, blocks[v][b].reconstructed)
          << "block " << b;
    }
  }
}

TEST(DeterminismTest, MembershipExperimentIdenticalAcrossThreadCounts) {
  Universe u = MakeGenotypeUniverse(100, /*freq_seed=*/45);
  auto pools = MakePools();
  std::vector<membership::MembershipResult> results;
  for (const auto& pool : pools) {
    membership::MembershipOptions opts;
    opts.pool_size = 30;
    opts.trials = 50;
    opts.pool = pool.get();
    results.push_back(membership::RunMembershipExperiment(u, opts));
  }
  for (size_t v = 1; v < results.size(); ++v) {
    EXPECT_EQ(results[0].auc, results[v].auc);
    EXPECT_EQ(results[0].advantage, results[v].advantage);
    EXPECT_EQ(results[0].mean_in, results[v].mean_in);
    EXPECT_EQ(results[0].mean_out, results[v].mean_out);
  }
}

// ---------------------------------------------------------------------
// LP backend determinism: the revised simplex keeps no global mutable
// state, so the same instance must produce bit-identical pivot counts and
// solution vectors whether solved serially, concurrently on a pool, or
// repeatedly from a warm-start basis.
// ---------------------------------------------------------------------

// A seeded decoder-shaped L1-fit LP (box variables + u/v residual rows).
LpProblem SeededDecodeLp(uint64_t seed, size_t n, size_t q) {
  Rng rng(seed);
  LpProblem lp;
  std::vector<size_t> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = lp.AddVariable(0.0, 1.0, 0.0);
  for (size_t j = 0; j < q; ++j) {
    size_t u = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    size_t v = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    std::vector<std::pair<size_t, double>> row;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) row.emplace_back(x[i], 1.0);
    }
    row.emplace_back(u, 1.0);
    row.emplace_back(v, -1.0);
    lp.AddConstraint(row, Relation::kEqual,
                     static_cast<double>(rng.UniformInt(0, (int64_t)n)));
  }
  return lp;
}

TEST(DeterminismTest, LpBackendsIdenticalAcrossThreadCounts) {
  for (const char* backend_name : {"dense", "sparse"}) {
    Result<std::unique_ptr<LpBackend>> backend = MakeLpBackend(backend_name);
    ASSERT_TRUE(backend.ok());
    LpProblem lp = SeededDecodeLp(/*seed=*/0x17D5, /*n=*/12, /*q=*/40);
    Result<LpSolution> serial = lp.SolveWith(**backend, LpSolveOptions{});
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    // The same solve replayed concurrently on every pool (the per-solve
    // state is stack-local; only the metric counters are shared, and they
    // only ever add).
    auto pools = MakePools();
    for (const auto& pool : pools) {
      constexpr size_t kReplays = 8;
      std::vector<Result<LpSolution>> replays;
      replays.reserve(kReplays);
      for (size_t i = 0; i < kReplays; ++i) {
        replays.push_back(Status::Internal("not run"));
      }
      ParallelFor(
          pool.get(), kReplays,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              replays[i] = lp.SolveWith(**backend, LpSolveOptions{});
            }
          },
          /*chunk_size=*/1);
      for (const Result<LpSolution>& r : replays) {
        ASSERT_TRUE(r.ok()) << backend_name;
        EXPECT_EQ(r->iterations, serial->iterations) << backend_name;
        EXPECT_EQ(r->values, serial->values) << backend_name;
        EXPECT_EQ(r->objective, serial->objective) << backend_name;
      }
    }
  }
}

TEST(DeterminismTest, WarmStartedSolvesReplayBitIdentically) {
  Result<std::unique_ptr<LpBackend>> sparse = MakeLpBackend("sparse");
  ASSERT_TRUE(sparse.ok());
  LpProblem lp = SeededDecodeLp(/*seed=*/0xBA5E, /*n=*/10, /*q=*/30);

  LpBasis basis;
  LpSolveOptions seed_options;
  seed_options.final_basis = &basis;
  Result<LpSolution> cold = lp.SolveWith(**sparse, seed_options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_FALSE(basis.empty());

  // Repeated warm-started solves from the same basis: the basis is read,
  // re-exported identical (the solve is already optimal), and the pivot
  // count and solution vector replay exactly.
  LpSolveOptions warm_options;
  warm_options.warm_start = &basis;
  warm_options.final_basis = &basis;
  Result<LpSolution> first = lp.SolveWith(**sparse, warm_options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int replay = 0; replay < 3; ++replay) {
    Result<LpSolution> again = lp.SolveWith(**sparse, warm_options);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->iterations, first->iterations) << "replay " << replay;
    EXPECT_EQ(again->values, first->values) << "replay " << replay;
    EXPECT_EQ(again->objective, first->objective) << "replay " << replay;
  }
}

TEST(StreamAtTest, PureFunctionOfSeedAndIndex) {
  for (uint64_t index : {0ull, 1ull, 63ull, 1000000ull}) {
    Rng a = Rng::StreamAt(0xABCD, index);
    Rng b = Rng::StreamAt(0xABCD, index);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(a.NextUint64(), b.NextUint64());
    }
  }
}

TEST(StreamAtTest, DistinctStreamsAndSeeds) {
  // First outputs across 1000 consecutive indices (and across two master
  // seeds) must all differ — consecutive counters land in unrelated
  // states after the SplitMix64 finalizer.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    seen.insert(Rng::StreamAt(1, i).NextUint64());
    seen.insert(Rng::StreamAt(2, i).NextUint64());
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(StreamAtTest, AdjacentStreamsUncorrelated) {
  // Pearson correlation between the uniform outputs of adjacent streams.
  // With 1024 samples the null SE is ~1/32; 0.15 is ~5 sigma.
  constexpr size_t kSamples = 1024;
  for (uint64_t i = 0; i < 8; ++i) {
    Rng a = Rng::StreamAt(0x5EED, i);
    Rng b = Rng::StreamAt(0x5EED, i + 1);
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (size_t k = 0; k < kSamples; ++k) {
      double x = a.UniformDouble();
      double y = b.UniformDouble();
      sa += x;
      sb += y;
      saa += x * x;
      sbb += y * y;
      sab += x * y;
    }
    double n = static_cast<double>(kSamples);
    double cov = sab / n - (sa / n) * (sb / n);
    double var_a = saa / n - (sa / n) * (sa / n);
    double var_b = sbb / n - (sb / n) * (sb / n);
    double corr = cov / std::sqrt(var_a * var_b);
    EXPECT_LT(std::fabs(corr), 0.15) << "streams " << i << "," << i + 1;
  }
}

TEST(StreamAtTest, NoSequenceOverlapSmokeCheck) {
  // If stream i+1 started inside stream i's sequence, their output sets
  // would intersect. 64 outputs x 16 adjacent pairs: any collision of
  // 64-bit values here means overlap, not chance.
  for (uint64_t i = 0; i < 16; ++i) {
    std::set<uint64_t> a_out;
    Rng a = Rng::StreamAt(0xFACE, i);
    for (int k = 0; k < 64; ++k) a_out.insert(a.NextUint64());
    Rng b = Rng::StreamAt(0xFACE, i + 1);
    for (int k = 0; k < 64; ++k) {
      EXPECT_EQ(a_out.count(b.NextUint64()), 0u) << "streams " << i;
    }
  }
}

// Pins one known-good result per seed. The exact integers below were
// produced by the StreamAt-based trial loop; any accidental reordering of
// RNG consumption (e.g. reintroducing Fork() inside a trial loop, or a
// chunk-order-dependent merge) changes them and fails this test.
TEST(DeterminismTest, PinnedPsoGameRegression) {
  Universe u = MakeGicMedicalUniverse(100);
  // Mondrian + the 1/e hash attack: seed-sensitive intermediate success
  // counts plus a nontrivial weight distribution — a change in RNG
  // consumption order cannot leave all of them untouched.
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 5, kanon::HierarchySet::Defaults(u.schema),
      /*qi_attrs=*/{});
  auto adv = MakeKAnonHashAdversary();

  struct Pinned {
    uint64_t seed;
    size_t isolation_successes;
    size_t pso_successes;
    double weights_mean;
  };
  const Pinned pins[] = {
      {1, 19, 18, 0.00034533120460756282},
      {42, 15, 14, 0.00032895111369099338},
  };
  for (const Pinned& pin : pins) {
    PsoGameOptions opts;
    opts.trials = 40;
    opts.weight_pool = 20000;
    opts.seed = pin.seed;
    PsoGame game(u.distribution, 200, opts);
    PsoGameResult r = game.Run(*mech, *adv);
    EXPECT_EQ(r.isolation.trials(), 40u);
    EXPECT_EQ(r.isolation.successes(), pin.isolation_successes)
        << "seed " << pin.seed;
    EXPECT_EQ(r.pso_success.successes(), pin.pso_successes)
        << "seed " << pin.seed;
    EXPECT_NEAR(r.weights.mean(), pin.weights_mean, 1e-12)
        << "seed " << pin.seed;
  }
}

}  // namespace
}  // namespace pso
