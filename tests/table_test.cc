#include "common/table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/str_util.h"

namespace pso {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "n"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  EXPECT_EQ(t.Render(),
            "| name  | n     |\n"
            "|-------|-------|\n"
            "| alpha | 1     |\n"
            "| b     | 12345 |\n");
}

TEST(TextTableTest, HeaderOnlyTableRenders) {
  TextTable t({"col"});
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.Render(),
            "| col |\n"
            "|-----|\n");
}

TEST(TextTableTest, NumericRowRespectsPrecision) {
  TextTable t({"x", "y"});
  t.AddNumericRow({1.0, 2.5}, 2);
  t.AddNumericRow({0.125, -3.0}, 2);
  std::string out = t.Render();
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("0.12"), std::string::npos) << out;
  EXPECT_NE(out.find("-3.00"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, EveryLineHasEqualWidth) {
  TextTable t({"a", "longer header", "c"});
  t.AddRow({"xxxxxxxxxx", "y", "z"});
  t.AddNumericRow({1.0, 2.0, 3.0});
  std::vector<std::string> lines = Split(t.Render(), '\n');
  ASSERT_GE(lines.size(), 2u);
  // Render() ends with a newline, so the final split field is empty.
  EXPECT_TRUE(lines.back().empty());
  lines.pop_back();
  for (const std::string& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << line;
  }
}

}  // namespace
}  // namespace pso
