// Unit and property tests for the deterministic RNG and its samplers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace pso {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng fork = a.Fork();
  // Fork and parent should not replay each other.
  EXPECT_NE(a.NextUint64(), fork.NextUint64());
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformUint64(bound), bound);
  }
}

TEST(RngTest, UniformUint64IsRoughlyUniform) {
  Rng rng(13);
  const uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.UniformUint64(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 10, 600);  // ~6 sigma
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoublePositiveNeverZero) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.UniformDoublePositive(), 0.0);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.3, 0.01);
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(37);
  const double kScale = 2.0;
  double sum = 0.0;
  double sum_abs = 0.0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Laplace(kScale);
    sum += x;
    sum_abs += std::fabs(x);
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.05);          // mean 0
  EXPECT_NEAR(sum_abs / kTrials, kScale, 0.05);   // E|X| = b
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(41);
  double sum = 0.0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kTrials, 0.25, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(43);
  double sum = 0.0;
  double sq = 0.0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sq += (x - 5.0) * (x - 5.0);
  }
  EXPECT_NEAR(sum / kTrials, 5.0, 0.05);
  EXPECT_NEAR(sq / kTrials, 4.0, 0.1);
}

TEST(RngTest, TwoSidedGeometricSymmetricAndShaped) {
  Rng rng(47);
  const double kAlpha = std::exp(-1.0);  // eps = 1
  double sum = 0.0;
  int zeros = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    int64_t x = rng.TwoSidedGeometric(kAlpha);
    sum += static_cast<double>(x);
    if (x == 0) ++zeros;
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.03);
  // P(X = 0) = (1 - alpha) / (1 + alpha).
  double p0 = (1.0 - kAlpha) / (1.0 + kAlpha);
  EXPECT_NEAR(zeros / static_cast<double>(kTrials), p0, 0.01);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(53);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.Discrete(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kTrials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kTrials), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kTrials), 0.6, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(61);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(67);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

// Property sweep: the alias sampler must reproduce arbitrary weight
// profiles.
class DiscreteSamplerParamTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(DiscreteSamplerParamTest, MatchesWeights) {
  std::vector<double> weights = GetParam();
  double total = 0.0;
  for (double w : weights) total += w;
  DiscreteSampler sampler(weights);
  ASSERT_EQ(sampler.size(), weights.size());
  Rng rng(101);
  std::vector<int> counts(weights.size(), 0);
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) ++counts[sampler.Sample(rng)];
  for (size_t j = 0; j < weights.size(); ++j) {
    EXPECT_NEAR(counts[j] / static_cast<double>(kTrials), weights[j] / total,
                0.012)
        << "bucket " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightProfiles, DiscreteSamplerParamTest,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{1.0, 1.0},
                      std::vector<double>{0.0, 1.0, 0.0},
                      std::vector<double>{5.0, 1.0, 1.0, 1.0, 2.0},
                      std::vector<double>{1e-3, 1.0, 1e-3},
                      std::vector<double>(64, 1.0)));

}  // namespace
}  // namespace pso
