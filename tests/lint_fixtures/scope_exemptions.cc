// pso-lint-fixture-path: src/common/scope_exemptions.cc
//
// Fixture for path scoping: src/common/ implements the annotated
// wrappers, so `bare-mutex` does not apply there (this file declares a
// raw std::mutex and expects NO finding). The determinism rules still
// do apply: the rand() call below must fire even inside src/common/.
#include <cstdlib>
#include <mutex>

std::mutex g_wrapper_internal_mu;  // no finding: src/common/ is exempt

int StillChecked() {
  return std::rand();  // lint-expect: rand
}
