// pso-lint-fixture-path: src/example/nodiscard_status_rule.h
//
// Fixture for the `nodiscard-status` rule: every header declaration
// returning Status or Result<T> by value must be [[nodiscard]] so a
// dropped error cannot pass silently.
#ifndef PSO_EXAMPLE_NODISCARD_STATUS_RULE_H_
#define PSO_EXAMPLE_NODISCARD_STATUS_RULE_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pso::example {

Status BadFreeFunction(const std::string& path);  // lint-expect: nodiscard-status

Result<int> BadResultFunction();  // lint-expect: nodiscard-status

class Widget {
 public:
  Status BadMethod();  // lint-expect: nodiscard-status

  Status SuppressedMethod();  // pso-lint: allow(nodiscard-status)

  [[nodiscard]] Status GoodMethod();

  [[nodiscard]] static Status GoodStaticMethod(int arg);

  [[nodiscard]] Result<double> GoodResultMethod() const;

  /// By-reference returns are exempt: nothing new to discard.
  const Status& build_status() const { return build_status_; }

 private:
  Status build_status_;  // member declaration, not a function: exempt
};

[[nodiscard]] inline Status GoodInlineFunction() {
  // `return Status::...` expressions inside bodies never fire:
  return Status::Ok();
}

}  // namespace pso::example

#endif  // PSO_EXAMPLE_NODISCARD_STATUS_RULE_H_
