// Fixture for the `sleep` rule: no sleep_for/usleep-style polling in
// src/ outside src/common/. A sleep loop cannot be interrupted by
// notify/shutdown and turns every state change into worst-case latency;
// wait on a pso::CondVar (WaitFor for periodic work) instead.
// pso-lint-fixture-path: src/solver/sleep_fixture.cc

#include <atomic>
#include <chrono>
#include <thread>

namespace pso {

void PollWithSleepFor(const std::atomic<bool>& done) {
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));  // lint-expect: sleep
  }
}

void PollWithSleepUntil(std::chrono::steady_clock::time_point deadline) {  // pso-lint: allow(wall-clock)
  std::this_thread::sleep_until(deadline);  // lint-expect: sleep
}

void PollWithUsleep() {
  usleep(1000);  // lint-expect: sleep
}

// `sleep` must match as a call token, not as a substring.
void RecordSleepiness(double sleep_score);

void SuppressedBackoff() {
  // Justified suppressions stay possible (e.g. backoff in a signal-free
  // context), but need the inline comment.
  std::this_thread::sleep_for(std::chrono::seconds(1));  // pso-lint: allow(sleep)
}

}  // namespace pso
