// pso-lint-fixture-path: src/example/assert_rule.cc
//
// Fixture for the `assert` rule: assert() vanishes under NDEBUG, while
// PSO_CHECK is always on and flushes logs/traces before aborting.
#include <cassert>
#include <cstdint>

void Bad(int x) {
  assert(x > 0);  // lint-expect: assert
}

void Suppressed(int x) {
  assert(x > 0);  // pso-lint: allow(assert)
}

void Clean(int64_t x) {
  // static_assert is a different beast (compile-time) and stays legal:
  static_assert(sizeof(int64_t) == 8, "LP64 expected");
  // gtest-style macros and identifiers containing "assert" never fire:
  int assert_count = static_cast<int>(x);
  (void)assert_count;
}
