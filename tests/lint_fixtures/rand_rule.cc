// pso-lint-fixture-path: src/example/rand_rule.cc
//
// Fixture for the `rand` rule: libc/std randomness is nondeterministic
// (seeded from the environment or hardware); pso::Rng streams are not.
#include <cstdlib>
#include <random>

int Bad() {
  std::srand(42);                       // lint-expect: rand
  int a = std::rand();                  // lint-expect: rand
  std::random_device rd;                // lint-expect: rand
  double d = drand48();                 // lint-expect: rand
  return a + static_cast<int>(rd() + d);
}

int Suppressed() {
  // Legitimate uses carry an inline waiver:
  return std::rand();  // pso-lint: allow(rand)
}

int Clean() {
  // Identifiers merely containing the banned names never fire:
  int operand = 3;       // "rand" inside a word
  int my_rand_total = operand;
  // Mentions in comments don't fire either: rand(), std::random_device.
  return my_rand_total;
}
