// pso-lint-fixture-path: src/example/bare_mutex_rule.cc
//
// Fixture for the `bare-mutex` rule: raw standard-library threading
// primitives carry no capability attributes, so clang -Wthread-safety
// cannot check code that uses them. Outside src/common/ the annotated
// pso wrappers are mandatory.
#include <condition_variable>
#include <mutex>
#include <thread>

std::mutex g_raw_mu;                   // lint-expect: bare-mutex
std::condition_variable g_raw_cv;      // lint-expect: bare-mutex

void Bad() {
  std::lock_guard<std::mutex> lock(g_raw_mu);  // lint-expect: bare-mutex
  std::thread t([] {});                        // lint-expect: bare-mutex
  t.join();
}

void Suppressed() {
  std::mutex local;  // pso-lint: allow(bare-mutex)
  local.lock();
  local.unlock();
}

unsigned Clean() {
  // Mentions in comments (std::mutex, std::thread) never fire; nor do
  // unrelated identifiers like mutex_count below.
  unsigned mutex_count = 0;
  return mutex_count;
}
