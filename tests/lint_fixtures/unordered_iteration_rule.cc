// pso-lint-fixture-path: src/example/unordered_iteration_rule.cc
//
// Fixture for the `unordered-iteration` rule: hash-iteration order is
// not a pure function of the data, so range-for over an unordered
// container feeds nondeterminism into whatever it builds.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

double Bad(const std::unordered_set<int64_t>& ignored) {
  std::unordered_map<int64_t, double> weights = {{1, 0.5}, {2, 0.25}};
  std::unordered_set<int64_t> values = {1, 2, 3};
  double sum = 0.0;
  for (const auto& [k, w] : weights) {  // lint-expect: unordered-iteration
    sum += w;
  }
  for (int64_t v : values) {  // lint-expect: unordered-iteration
    sum += static_cast<double>(v);
  }
  (void)ignored;
  return sum;
}

double Suppressed() {
  std::unordered_map<int64_t, double> weights = {{1, 0.5}};
  double sum = 0.0;
  // Commutative integer accumulation is genuinely order-independent:
  for (const auto& [k, w] : weights) {  // pso-lint: allow(unordered-iteration)
    sum += w;
  }
  return sum;
}

std::vector<int64_t> Clean() {
  std::unordered_set<int64_t> values = {3, 1, 2};
  // The sanctioned pattern: copy out, sort, iterate the sorted form.
  std::vector<int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<int64_t> out;
  for (int64_t v : sorted) out.push_back(v);
  return out;
}
