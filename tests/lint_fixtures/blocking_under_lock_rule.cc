// Fixture for the `blocking-under-lock` rule: outside src/common/, no
// Wait / WaitFor / Submit / recv / accept while a MutexLock is held.
// Blocking (or queueing onto a pool) under a lock is how lock-order
// cycles start; shrink the critical section instead.
// pso-lint-fixture-path: src/service/blocking_under_lock_fixture.cc

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/parallel.h"

namespace pso {

class Handler {
 public:
  void WaitUnderLock() {
    MutexLock lock(mu_);
    while (pending_ != 0) cv_.Wait(mu_);  // lint-expect: blocking-under-lock
  }

  void TimedWaitUnderLock() {
    MutexLock lock(mu_);
    cv_.WaitFor(mu_, default_timeout_);  // lint-expect: blocking-under-lock
  }

  void SubmitUnderLock(ThreadPool* pool) {
    MutexLock lock(mu_);
    pool->Submit([] {});  // lint-expect: blocking-under-lock
  }

  void SocketCallsUnderLock(int fd, char* buf, unsigned long len) {
    MutexLock lock(mu_);
    recv(fd, buf, len, 0);  // lint-expect: blocking-under-lock
    accept(fd, nullptr, nullptr);  // lint-expect: blocking-under-lock
  }

  void ShrunkCriticalSection(ThreadPool* pool) {
    {
      MutexLock lock(mu_);
      ++pending_;
    }
    pool->Submit([] {});  // lock already released: fine
  }

  void SuppressedHandoff() {
    MutexLock lock(mu_);
    cv_.Wait(mu_);  // pso-lint: allow(blocking-under-lock)
  }

 private:
  Mutex mu_ PSO_LOCK_ORDER(kService){LockRank::kService, "fixture.blocking"};
  CondVar cv_;
  int pending_ PSO_GUARDED_BY(mu_) = 0;
  std::chrono::milliseconds default_timeout_{5};
};

}  // namespace pso
