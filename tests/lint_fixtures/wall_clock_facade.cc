// pso-lint-fixture-path: src/common/metrics.cc
//
// Negative fixture for the monotonic half of the `wall-clock` rule: the
// timing facade (src/common/{metrics,trace,progress,parallel}) may read
// steady_clock / high_resolution_clock directly — that is where latency
// recording is implemented. Calendar time stays forbidden even here.
// The match is exact on the stem: src/common/metrics_helper.cc would
// NOT be exempt.
#include <chrono>
#include <ctime>

double FacadeTimer() {
  auto a = std::chrono::steady_clock::now();          // allowed: facade
  auto b = std::chrono::high_resolution_clock::now();  // allowed: facade
  return std::chrono::duration<double>(b.time_since_epoch() -
                                       a.time_since_epoch())
      .count();
}

long StillBad() {
  return static_cast<long>(time(nullptr));           // lint-expect: wall-clock
}
