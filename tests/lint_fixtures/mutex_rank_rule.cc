// Fixture for the `mutex-rank` rule: every pso::Mutex declared in src/
// must name its LockRank (common/lock_rank.h) so the static chain, the
// runtime verifier, and human readers all see the same order.
// pso-lint-fixture-path: src/service/mutex_rank_fixture.cc

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace pso {

class RankedMember {
  Mutex mu_ PSO_LOCK_ORDER(kService){LockRank::kService, "fixture.ranked"};
};

class RankedMultiLine {
  // The initializer may wrap lines; the rule scans the declaration up to
  // its terminating semicolon.
  mutable Mutex mu_ PSO_LOCK_ORDER(kBudget){LockRank::kBudget,
                                            "fixture.multi_line"};
};

class UnrankedMember {
  Mutex mu_;  // lint-expect: mutex-rank
};

class ExplicitlyUnranked {
  // Naming kUnranked is not an escape hatch in src/.
  Mutex mu_{LockRank::kUnranked, "fixture.unranked"};  // lint-expect: mutex-rank
};

pso::Mutex qualified_global;  // lint-expect: mutex-rank

// References and pointers are uses, not declarations.
Mutex& PassThrough(Mutex& mu) { return mu; }
void Inspect(const Mutex* mu);

class SuppressedScratch {
  Mutex scratch_;  // pso-lint: allow(mutex-rank)
};

}  // namespace pso
