// pso-lint-fixture-path: src/example/wall_clock_rule.cc
//
// Fixture for the `wall-clock` rule: calendar time leaks run-dependent
// values into library output. steady_clock (monotonic durations) is fine.
#include <chrono>
#include <ctime>

long Bad() {
  std::time_t t = time(nullptr);                     // lint-expect: wall-clock
  long c = clock();                                  // lint-expect: wall-clock
  auto now = std::chrono::system_clock::now();       // lint-expect: wall-clock
  return static_cast<long>(t) + c + now.time_since_epoch().count();
}

long Suppressed() {
  return static_cast<long>(time(nullptr));  // pso-lint: allow(wall-clock)
}

long Clean() {
  // Monotonic clocks are the sanctioned way to measure durations:
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::steady_clock::now();
  // Identifiers containing "time"/"clock" as substrings never fire:
  long wall_time(long);
  long my_clock_skew = 0;
  return (b - a).count() + wall_time(my_clock_skew);
}
