// pso-lint-fixture-path: src/example/wall_clock_rule.cc
//
// Fixture for the `wall-clock` rule: calendar time leaks run-dependent
// values into library output. Monotonic clocks (steady_clock,
// high_resolution_clock) are confined to the timing facade
// (src/common/{metrics,trace,progress,parallel}); outside it they need
// an explicit allow so latency measurement has one recording path.
#include <chrono>
#include <ctime>

long Bad() {
  std::time_t t = time(nullptr);                     // lint-expect: wall-clock
  long c = clock();                                  // lint-expect: wall-clock
  auto now = std::chrono::system_clock::now();       // lint-expect: wall-clock
  return static_cast<long>(t) + c + now.time_since_epoch().count();
}

long BadMonotonic() {
  auto a = std::chrono::steady_clock::now();         // lint-expect: wall-clock
  auto b =
      std::chrono::high_resolution_clock::now();     // lint-expect: wall-clock
  return (b.time_since_epoch() - a.time_since_epoch()).count();
}

long Suppressed() {
  long t = static_cast<long>(time(nullptr));  // pso-lint: allow(wall-clock)
  auto a = std::chrono::steady_clock::now();  // pso-lint: allow(wall-clock)
  return t + a.time_since_epoch().count();
}

long Clean() {
  // Identifiers containing "time"/"clock" as substrings never fire:
  long wall_time(long);
  long my_clock_skew = 0;
  return wall_time(my_clock_skew);
}
