# Empty compiler generated dependencies file for kanon_lattice_test.
# This may be replaced when dependencies are built.
