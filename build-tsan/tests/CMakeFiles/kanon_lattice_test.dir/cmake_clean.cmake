file(REMOVE_RECURSE
  "CMakeFiles/kanon_lattice_test.dir/kanon_lattice_test.cc.o"
  "CMakeFiles/kanon_lattice_test.dir/kanon_lattice_test.cc.o.d"
  "kanon_lattice_test"
  "kanon_lattice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
