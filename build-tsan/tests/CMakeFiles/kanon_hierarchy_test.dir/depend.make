# Empty dependencies file for kanon_hierarchy_test.
# This may be replaced when dependencies are built.
