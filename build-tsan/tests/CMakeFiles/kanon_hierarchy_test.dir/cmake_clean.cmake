file(REMOVE_RECURSE
  "CMakeFiles/kanon_hierarchy_test.dir/kanon_hierarchy_test.cc.o"
  "CMakeFiles/kanon_hierarchy_test.dir/kanon_hierarchy_test.cc.o.d"
  "kanon_hierarchy_test"
  "kanon_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
