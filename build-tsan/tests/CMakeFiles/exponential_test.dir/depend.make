# Empty dependencies file for exponential_test.
# This may be replaced when dependencies are built.
