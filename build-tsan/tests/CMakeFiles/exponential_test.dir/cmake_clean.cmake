file(REMOVE_RECURSE
  "CMakeFiles/exponential_test.dir/exponential_test.cc.o"
  "CMakeFiles/exponential_test.dir/exponential_test.cc.o.d"
  "exponential_test"
  "exponential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exponential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
