file(REMOVE_RECURSE
  "CMakeFiles/interactive_test.dir/interactive_test.cc.o"
  "CMakeFiles/interactive_test.dir/interactive_test.cc.o.d"
  "interactive_test"
  "interactive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
