file(REMOVE_RECURSE
  "CMakeFiles/recon_test.dir/recon_test.cc.o"
  "CMakeFiles/recon_test.dir/recon_test.cc.o.d"
  "recon_test"
  "recon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
