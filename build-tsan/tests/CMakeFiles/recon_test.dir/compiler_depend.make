# Empty compiler generated dependencies file for recon_test.
# This may be replaced when dependencies are built.
