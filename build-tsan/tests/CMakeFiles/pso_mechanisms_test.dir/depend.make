# Empty dependencies file for pso_mechanisms_test.
# This may be replaced when dependencies are built.
