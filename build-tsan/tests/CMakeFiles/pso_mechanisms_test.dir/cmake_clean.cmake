file(REMOVE_RECURSE
  "CMakeFiles/pso_mechanisms_test.dir/pso_mechanisms_test.cc.o"
  "CMakeFiles/pso_mechanisms_test.dir/pso_mechanisms_test.cc.o.d"
  "pso_mechanisms_test"
  "pso_mechanisms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_mechanisms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
