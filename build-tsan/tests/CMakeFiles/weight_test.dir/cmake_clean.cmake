file(REMOVE_RECURSE
  "CMakeFiles/weight_test.dir/weight_test.cc.o"
  "CMakeFiles/weight_test.dir/weight_test.cc.o.d"
  "weight_test"
  "weight_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
