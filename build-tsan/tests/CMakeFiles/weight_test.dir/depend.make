# Empty dependencies file for weight_test.
# This may be replaced when dependencies are built.
