# Empty compiler generated dependencies file for sat_reconstruct_test.
# This may be replaced when dependencies are built.
