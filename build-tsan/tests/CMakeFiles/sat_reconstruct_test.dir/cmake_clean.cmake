file(REMOVE_RECURSE
  "CMakeFiles/sat_reconstruct_test.dir/sat_reconstruct_test.cc.o"
  "CMakeFiles/sat_reconstruct_test.dir/sat_reconstruct_test.cc.o.d"
  "sat_reconstruct_test"
  "sat_reconstruct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_reconstruct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
