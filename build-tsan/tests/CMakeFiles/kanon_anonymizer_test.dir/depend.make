# Empty dependencies file for kanon_anonymizer_test.
# This may be replaced when dependencies are built.
