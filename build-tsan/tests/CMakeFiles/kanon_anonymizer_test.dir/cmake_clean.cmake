file(REMOVE_RECURSE
  "CMakeFiles/kanon_anonymizer_test.dir/kanon_anonymizer_test.cc.o"
  "CMakeFiles/kanon_anonymizer_test.dir/kanon_anonymizer_test.cc.o.d"
  "kanon_anonymizer_test"
  "kanon_anonymizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_anonymizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
