# Empty compiler generated dependencies file for kanon_attacks_test.
# This may be replaced when dependencies are built.
