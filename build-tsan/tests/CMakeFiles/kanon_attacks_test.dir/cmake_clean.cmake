file(REMOVE_RECURSE
  "CMakeFiles/kanon_attacks_test.dir/kanon_attacks_test.cc.o"
  "CMakeFiles/kanon_attacks_test.dir/kanon_attacks_test.cc.o.d"
  "kanon_attacks_test"
  "kanon_attacks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_attacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
