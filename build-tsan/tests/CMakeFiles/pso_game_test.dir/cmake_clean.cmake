file(REMOVE_RECURSE
  "CMakeFiles/pso_game_test.dir/pso_game_test.cc.o"
  "CMakeFiles/pso_game_test.dir/pso_game_test.cc.o.d"
  "pso_game_test"
  "pso_game_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
