# Empty compiler generated dependencies file for pso_game_test.
# This may be replaced when dependencies are built.
