# Empty compiler generated dependencies file for interactive_analyst.
# This may be replaced when dependencies are built.
