file(REMOVE_RECURSE
  "CMakeFiles/interactive_analyst.dir/interactive_analyst.cpp.o"
  "CMakeFiles/interactive_analyst.dir/interactive_analyst.cpp.o.d"
  "interactive_analyst"
  "interactive_analyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_analyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
