file(REMOVE_RECURSE
  "CMakeFiles/gdpr_singling_out.dir/gdpr_singling_out.cpp.o"
  "CMakeFiles/gdpr_singling_out.dir/gdpr_singling_out.cpp.o.d"
  "gdpr_singling_out"
  "gdpr_singling_out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdpr_singling_out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
