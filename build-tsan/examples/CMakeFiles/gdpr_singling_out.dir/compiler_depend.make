# Empty compiler generated dependencies file for gdpr_singling_out.
# This may be replaced when dependencies are built.
