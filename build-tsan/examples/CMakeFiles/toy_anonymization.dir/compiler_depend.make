# Empty compiler generated dependencies file for toy_anonymization.
# This may be replaced when dependencies are built.
