file(REMOVE_RECURSE
  "CMakeFiles/toy_anonymization.dir/toy_anonymization.cpp.o"
  "CMakeFiles/toy_anonymization.dir/toy_anonymization.cpp.o.d"
  "toy_anonymization"
  "toy_anonymization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_anonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
