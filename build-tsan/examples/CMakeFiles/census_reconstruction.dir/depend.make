# Empty dependencies file for census_reconstruction.
# This may be replaced when dependencies are built.
