file(REMOVE_RECURSE
  "CMakeFiles/census_reconstruction.dir/census_reconstruction.cpp.o"
  "CMakeFiles/census_reconstruction.dir/census_reconstruction.cpp.o.d"
  "census_reconstruction"
  "census_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
