file(REMOVE_RECURSE
  "CMakeFiles/bench_dp_audit.dir/bench_dp_audit.cc.o"
  "CMakeFiles/bench_dp_audit.dir/bench_dp_audit.cc.o.d"
  "bench_dp_audit"
  "bench_dp_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
