# Empty compiler generated dependencies file for bench_dp_audit.
# This may be replaced when dependencies are built.
