# Empty dependencies file for bench_sweeney_linkage.
# This may be replaced when dependencies are built.
