file(REMOVE_RECURSE
  "CMakeFiles/bench_sweeney_linkage.dir/bench_sweeney_linkage.cc.o"
  "CMakeFiles/bench_sweeney_linkage.dir/bench_sweeney_linkage.cc.o.d"
  "bench_sweeney_linkage"
  "bench_sweeney_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweeney_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
