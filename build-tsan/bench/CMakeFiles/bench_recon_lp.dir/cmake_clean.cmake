file(REMOVE_RECURSE
  "CMakeFiles/bench_recon_lp.dir/bench_recon_lp.cc.o"
  "CMakeFiles/bench_recon_lp.dir/bench_recon_lp.cc.o.d"
  "bench_recon_lp"
  "bench_recon_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recon_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
