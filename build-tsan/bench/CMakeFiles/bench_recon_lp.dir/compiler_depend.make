# Empty compiler generated dependencies file for bench_recon_lp.
# This may be replaced when dependencies are built.
