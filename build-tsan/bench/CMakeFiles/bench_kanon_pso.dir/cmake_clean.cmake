file(REMOVE_RECURSE
  "CMakeFiles/bench_kanon_pso.dir/bench_kanon_pso.cc.o"
  "CMakeFiles/bench_kanon_pso.dir/bench_kanon_pso.cc.o.d"
  "bench_kanon_pso"
  "bench_kanon_pso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kanon_pso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
