# Empty dependencies file for bench_kanon_pso.
# This may be replaced when dependencies are built.
