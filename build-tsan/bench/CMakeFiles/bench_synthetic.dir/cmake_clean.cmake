file(REMOVE_RECURSE
  "CMakeFiles/bench_synthetic.dir/bench_synthetic.cc.o"
  "CMakeFiles/bench_synthetic.dir/bench_synthetic.cc.o.d"
  "bench_synthetic"
  "bench_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
