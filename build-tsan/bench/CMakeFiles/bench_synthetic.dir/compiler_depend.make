# Empty compiler generated dependencies file for bench_synthetic.
# This may be replaced when dependencies are built.
