file(REMOVE_RECURSE
  "CMakeFiles/bench_fundamental_law.dir/bench_fundamental_law.cc.o"
  "CMakeFiles/bench_fundamental_law.dir/bench_fundamental_law.cc.o.d"
  "bench_fundamental_law"
  "bench_fundamental_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fundamental_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
