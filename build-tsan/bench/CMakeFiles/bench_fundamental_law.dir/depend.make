# Empty dependencies file for bench_fundamental_law.
# This may be replaced when dependencies are built.
