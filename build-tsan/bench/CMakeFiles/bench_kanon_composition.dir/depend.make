# Empty dependencies file for bench_kanon_composition.
# This may be replaced when dependencies are built.
