file(REMOVE_RECURSE
  "CMakeFiles/bench_kanon_composition.dir/bench_kanon_composition.cc.o"
  "CMakeFiles/bench_kanon_composition.dir/bench_kanon_composition.cc.o.d"
  "bench_kanon_composition"
  "bench_kanon_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kanon_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
