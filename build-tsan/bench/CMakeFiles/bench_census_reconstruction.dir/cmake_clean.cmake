file(REMOVE_RECURSE
  "CMakeFiles/bench_census_reconstruction.dir/bench_census_reconstruction.cc.o"
  "CMakeFiles/bench_census_reconstruction.dir/bench_census_reconstruction.cc.o.d"
  "bench_census_reconstruction"
  "bench_census_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_census_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
