# Empty compiler generated dependencies file for bench_census_reconstruction.
# This may be replaced when dependencies are built.
