# Empty compiler generated dependencies file for bench_recon_exponential.
# This may be replaced when dependencies are built.
