file(REMOVE_RECURSE
  "CMakeFiles/bench_recon_exponential.dir/bench_recon_exponential.cc.o"
  "CMakeFiles/bench_recon_exponential.dir/bench_recon_exponential.cc.o.d"
  "bench_recon_exponential"
  "bench_recon_exponential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recon_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
