# Empty dependencies file for bench_baseline_isolation.
# This may be replaced when dependencies are built.
