file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_isolation.dir/bench_baseline_isolation.cc.o"
  "CMakeFiles/bench_baseline_isolation.dir/bench_baseline_isolation.cc.o.d"
  "bench_baseline_isolation"
  "bench_baseline_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
