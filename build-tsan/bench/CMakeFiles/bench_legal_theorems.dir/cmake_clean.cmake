file(REMOVE_RECURSE
  "CMakeFiles/bench_legal_theorems.dir/bench_legal_theorems.cc.o"
  "CMakeFiles/bench_legal_theorems.dir/bench_legal_theorems.cc.o.d"
  "bench_legal_theorems"
  "bench_legal_theorems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_legal_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
