# Empty dependencies file for bench_composition_attack.
# This may be replaced when dependencies are built.
