file(REMOVE_RECURSE
  "CMakeFiles/bench_composition_attack.dir/bench_composition_attack.cc.o"
  "CMakeFiles/bench_composition_attack.dir/bench_composition_attack.cc.o.d"
  "bench_composition_attack"
  "bench_composition_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_composition_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
