
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_count_pso.cc" "bench/CMakeFiles/bench_count_pso.dir/bench_count_pso.cc.o" "gcc" "bench/CMakeFiles/bench_count_pso.dir/bench_count_pso.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/pso/CMakeFiles/pso_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kanon/CMakeFiles/pso_kanon.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dp/CMakeFiles/pso_dp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/predicate/CMakeFiles/pso_predicate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/pso_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/pso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
