# Empty dependencies file for bench_count_pso.
# This may be replaced when dependencies are built.
