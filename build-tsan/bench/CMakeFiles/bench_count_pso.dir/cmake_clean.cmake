file(REMOVE_RECURSE
  "CMakeFiles/bench_count_pso.dir/bench_count_pso.cc.o"
  "CMakeFiles/bench_count_pso.dir/bench_count_pso.cc.o.d"
  "bench_count_pso"
  "bench_count_pso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_count_pso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
