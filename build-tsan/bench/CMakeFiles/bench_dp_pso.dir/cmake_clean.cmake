file(REMOVE_RECURSE
  "CMakeFiles/bench_dp_pso.dir/bench_dp_pso.cc.o"
  "CMakeFiles/bench_dp_pso.dir/bench_dp_pso.cc.o.d"
  "bench_dp_pso"
  "bench_dp_pso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_pso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
