# Empty compiler generated dependencies file for bench_dp_pso.
# This may be replaced when dependencies are built.
