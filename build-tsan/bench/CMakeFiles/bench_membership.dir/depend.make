# Empty dependencies file for bench_membership.
# This may be replaced when dependencies are built.
