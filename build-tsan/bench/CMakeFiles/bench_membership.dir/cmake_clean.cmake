file(REMOVE_RECURSE
  "CMakeFiles/bench_membership.dir/bench_membership.cc.o"
  "CMakeFiles/bench_membership.dir/bench_membership.cc.o.d"
  "bench_membership"
  "bench_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
