# Empty compiler generated dependencies file for pso_core.
# This may be replaced when dependencies are built.
