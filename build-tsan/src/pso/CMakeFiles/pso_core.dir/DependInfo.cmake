
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pso/adversaries.cc" "src/pso/CMakeFiles/pso_core.dir/adversaries.cc.o" "gcc" "src/pso/CMakeFiles/pso_core.dir/adversaries.cc.o.d"
  "/root/repo/src/pso/composition_attack.cc" "src/pso/CMakeFiles/pso_core.dir/composition_attack.cc.o" "gcc" "src/pso/CMakeFiles/pso_core.dir/composition_attack.cc.o.d"
  "/root/repo/src/pso/game.cc" "src/pso/CMakeFiles/pso_core.dir/game.cc.o" "gcc" "src/pso/CMakeFiles/pso_core.dir/game.cc.o.d"
  "/root/repo/src/pso/interactive.cc" "src/pso/CMakeFiles/pso_core.dir/interactive.cc.o" "gcc" "src/pso/CMakeFiles/pso_core.dir/interactive.cc.o.d"
  "/root/repo/src/pso/mechanisms.cc" "src/pso/CMakeFiles/pso_core.dir/mechanisms.cc.o" "gcc" "src/pso/CMakeFiles/pso_core.dir/mechanisms.cc.o.d"
  "/root/repo/src/pso/synthetic.cc" "src/pso/CMakeFiles/pso_core.dir/synthetic.cc.o" "gcc" "src/pso/CMakeFiles/pso_core.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/kanon/CMakeFiles/pso_kanon.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dp/CMakeFiles/pso_dp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/predicate/CMakeFiles/pso_predicate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/pso_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/pso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
