file(REMOVE_RECURSE
  "CMakeFiles/pso_core.dir/adversaries.cc.o"
  "CMakeFiles/pso_core.dir/adversaries.cc.o.d"
  "CMakeFiles/pso_core.dir/composition_attack.cc.o"
  "CMakeFiles/pso_core.dir/composition_attack.cc.o.d"
  "CMakeFiles/pso_core.dir/game.cc.o"
  "CMakeFiles/pso_core.dir/game.cc.o.d"
  "CMakeFiles/pso_core.dir/interactive.cc.o"
  "CMakeFiles/pso_core.dir/interactive.cc.o.d"
  "CMakeFiles/pso_core.dir/mechanisms.cc.o"
  "CMakeFiles/pso_core.dir/mechanisms.cc.o.d"
  "CMakeFiles/pso_core.dir/synthetic.cc.o"
  "CMakeFiles/pso_core.dir/synthetic.cc.o.d"
  "libpso_core.a"
  "libpso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
