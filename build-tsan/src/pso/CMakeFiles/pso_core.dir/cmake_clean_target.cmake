file(REMOVE_RECURSE
  "libpso_core.a"
)
