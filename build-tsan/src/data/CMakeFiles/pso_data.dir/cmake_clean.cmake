file(REMOVE_RECURSE
  "CMakeFiles/pso_data.dir/csv.cc.o"
  "CMakeFiles/pso_data.dir/csv.cc.o.d"
  "CMakeFiles/pso_data.dir/dataset.cc.o"
  "CMakeFiles/pso_data.dir/dataset.cc.o.d"
  "CMakeFiles/pso_data.dir/distribution.cc.o"
  "CMakeFiles/pso_data.dir/distribution.cc.o.d"
  "CMakeFiles/pso_data.dir/generators.cc.o"
  "CMakeFiles/pso_data.dir/generators.cc.o.d"
  "CMakeFiles/pso_data.dir/schema.cc.o"
  "CMakeFiles/pso_data.dir/schema.cc.o.d"
  "libpso_data.a"
  "libpso_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
