# Empty dependencies file for pso_data.
# This may be replaced when dependencies are built.
