
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/pso_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/pso_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/pso_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/pso_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/distribution.cc" "src/data/CMakeFiles/pso_data.dir/distribution.cc.o" "gcc" "src/data/CMakeFiles/pso_data.dir/distribution.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/pso_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/pso_data.dir/generators.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/pso_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/pso_data.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/pso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
