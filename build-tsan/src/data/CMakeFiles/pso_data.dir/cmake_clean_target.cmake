file(REMOVE_RECURSE
  "libpso_data.a"
)
