# Empty compiler generated dependencies file for pso_data.
# This may be replaced when dependencies are built.
