
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recon/attacks.cc" "src/recon/CMakeFiles/pso_recon.dir/attacks.cc.o" "gcc" "src/recon/CMakeFiles/pso_recon.dir/attacks.cc.o.d"
  "/root/repo/src/recon/oracle.cc" "src/recon/CMakeFiles/pso_recon.dir/oracle.cc.o" "gcc" "src/recon/CMakeFiles/pso_recon.dir/oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solver/CMakeFiles/pso_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/pso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
