file(REMOVE_RECURSE
  "libpso_recon.a"
)
