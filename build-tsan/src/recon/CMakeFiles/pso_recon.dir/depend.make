# Empty dependencies file for pso_recon.
# This may be replaced when dependencies are built.
