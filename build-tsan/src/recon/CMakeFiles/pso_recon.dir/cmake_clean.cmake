file(REMOVE_RECURSE
  "CMakeFiles/pso_recon.dir/attacks.cc.o"
  "CMakeFiles/pso_recon.dir/attacks.cc.o.d"
  "CMakeFiles/pso_recon.dir/oracle.cc.o"
  "CMakeFiles/pso_recon.dir/oracle.cc.o.d"
  "libpso_recon.a"
  "libpso_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
