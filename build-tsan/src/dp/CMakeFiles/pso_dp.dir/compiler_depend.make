# Empty compiler generated dependencies file for pso_dp.
# This may be replaced when dependencies are built.
