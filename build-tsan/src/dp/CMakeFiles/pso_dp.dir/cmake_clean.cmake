file(REMOVE_RECURSE
  "CMakeFiles/pso_dp.dir/accountant.cc.o"
  "CMakeFiles/pso_dp.dir/accountant.cc.o.d"
  "CMakeFiles/pso_dp.dir/audit.cc.o"
  "CMakeFiles/pso_dp.dir/audit.cc.o.d"
  "CMakeFiles/pso_dp.dir/exponential.cc.o"
  "CMakeFiles/pso_dp.dir/exponential.cc.o.d"
  "CMakeFiles/pso_dp.dir/mechanisms.cc.o"
  "CMakeFiles/pso_dp.dir/mechanisms.cc.o.d"
  "libpso_dp.a"
  "libpso_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
