file(REMOVE_RECURSE
  "libpso_dp.a"
)
