file(REMOVE_RECURSE
  "CMakeFiles/pso_legal.dir/report.cc.o"
  "CMakeFiles/pso_legal.dir/report.cc.o.d"
  "CMakeFiles/pso_legal.dir/verdict.cc.o"
  "CMakeFiles/pso_legal.dir/verdict.cc.o.d"
  "libpso_legal.a"
  "libpso_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
