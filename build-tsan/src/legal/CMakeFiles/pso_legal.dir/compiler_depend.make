# Empty compiler generated dependencies file for pso_legal.
# This may be replaced when dependencies are built.
