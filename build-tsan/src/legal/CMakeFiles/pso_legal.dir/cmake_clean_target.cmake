file(REMOVE_RECURSE
  "libpso_legal.a"
)
