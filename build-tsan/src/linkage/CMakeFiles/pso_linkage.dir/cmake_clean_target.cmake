file(REMOVE_RECURSE
  "libpso_linkage.a"
)
