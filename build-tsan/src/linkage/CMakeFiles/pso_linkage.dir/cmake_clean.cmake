file(REMOVE_RECURSE
  "CMakeFiles/pso_linkage.dir/join_attack.cc.o"
  "CMakeFiles/pso_linkage.dir/join_attack.cc.o.d"
  "CMakeFiles/pso_linkage.dir/uniqueness.cc.o"
  "CMakeFiles/pso_linkage.dir/uniqueness.cc.o.d"
  "libpso_linkage.a"
  "libpso_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
