# Empty dependencies file for pso_linkage.
# This may be replaced when dependencies are built.
