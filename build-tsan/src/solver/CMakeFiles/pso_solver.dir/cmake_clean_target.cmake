file(REMOVE_RECURSE
  "libpso_solver.a"
)
