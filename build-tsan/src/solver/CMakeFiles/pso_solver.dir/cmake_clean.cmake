file(REMOVE_RECURSE
  "CMakeFiles/pso_solver.dir/csp.cc.o"
  "CMakeFiles/pso_solver.dir/csp.cc.o.d"
  "CMakeFiles/pso_solver.dir/lp.cc.o"
  "CMakeFiles/pso_solver.dir/lp.cc.o.d"
  "CMakeFiles/pso_solver.dir/sat.cc.o"
  "CMakeFiles/pso_solver.dir/sat.cc.o.d"
  "libpso_solver.a"
  "libpso_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
