# Empty compiler generated dependencies file for pso_solver.
# This may be replaced when dependencies are built.
