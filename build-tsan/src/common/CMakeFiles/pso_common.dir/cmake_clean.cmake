file(REMOVE_RECURSE
  "CMakeFiles/pso_common.dir/hash.cc.o"
  "CMakeFiles/pso_common.dir/hash.cc.o.d"
  "CMakeFiles/pso_common.dir/metrics.cc.o"
  "CMakeFiles/pso_common.dir/metrics.cc.o.d"
  "CMakeFiles/pso_common.dir/parallel.cc.o"
  "CMakeFiles/pso_common.dir/parallel.cc.o.d"
  "CMakeFiles/pso_common.dir/rng.cc.o"
  "CMakeFiles/pso_common.dir/rng.cc.o.d"
  "CMakeFiles/pso_common.dir/stats.cc.o"
  "CMakeFiles/pso_common.dir/stats.cc.o.d"
  "CMakeFiles/pso_common.dir/status.cc.o"
  "CMakeFiles/pso_common.dir/status.cc.o.d"
  "CMakeFiles/pso_common.dir/str_util.cc.o"
  "CMakeFiles/pso_common.dir/str_util.cc.o.d"
  "CMakeFiles/pso_common.dir/table.cc.o"
  "CMakeFiles/pso_common.dir/table.cc.o.d"
  "libpso_common.a"
  "libpso_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
