# Empty dependencies file for pso_common.
# This may be replaced when dependencies are built.
