file(REMOVE_RECURSE
  "libpso_common.a"
)
