file(REMOVE_RECURSE
  "libpso_kanon.a"
)
