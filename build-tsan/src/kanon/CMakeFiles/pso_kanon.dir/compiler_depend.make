# Empty compiler generated dependencies file for pso_kanon.
# This may be replaced when dependencies are built.
