file(REMOVE_RECURSE
  "CMakeFiles/pso_kanon.dir/attacks.cc.o"
  "CMakeFiles/pso_kanon.dir/attacks.cc.o.d"
  "CMakeFiles/pso_kanon.dir/checks.cc.o"
  "CMakeFiles/pso_kanon.dir/checks.cc.o.d"
  "CMakeFiles/pso_kanon.dir/datafly.cc.o"
  "CMakeFiles/pso_kanon.dir/datafly.cc.o.d"
  "CMakeFiles/pso_kanon.dir/generalized.cc.o"
  "CMakeFiles/pso_kanon.dir/generalized.cc.o.d"
  "CMakeFiles/pso_kanon.dir/hierarchy.cc.o"
  "CMakeFiles/pso_kanon.dir/hierarchy.cc.o.d"
  "CMakeFiles/pso_kanon.dir/lattice.cc.o"
  "CMakeFiles/pso_kanon.dir/lattice.cc.o.d"
  "CMakeFiles/pso_kanon.dir/metrics.cc.o"
  "CMakeFiles/pso_kanon.dir/metrics.cc.o.d"
  "CMakeFiles/pso_kanon.dir/mondrian.cc.o"
  "CMakeFiles/pso_kanon.dir/mondrian.cc.o.d"
  "libpso_kanon.a"
  "libpso_kanon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_kanon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
