
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kanon/attacks.cc" "src/kanon/CMakeFiles/pso_kanon.dir/attacks.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/attacks.cc.o.d"
  "/root/repo/src/kanon/checks.cc" "src/kanon/CMakeFiles/pso_kanon.dir/checks.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/checks.cc.o.d"
  "/root/repo/src/kanon/datafly.cc" "src/kanon/CMakeFiles/pso_kanon.dir/datafly.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/datafly.cc.o.d"
  "/root/repo/src/kanon/generalized.cc" "src/kanon/CMakeFiles/pso_kanon.dir/generalized.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/generalized.cc.o.d"
  "/root/repo/src/kanon/hierarchy.cc" "src/kanon/CMakeFiles/pso_kanon.dir/hierarchy.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/hierarchy.cc.o.d"
  "/root/repo/src/kanon/lattice.cc" "src/kanon/CMakeFiles/pso_kanon.dir/lattice.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/lattice.cc.o.d"
  "/root/repo/src/kanon/metrics.cc" "src/kanon/CMakeFiles/pso_kanon.dir/metrics.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/metrics.cc.o.d"
  "/root/repo/src/kanon/mondrian.cc" "src/kanon/CMakeFiles/pso_kanon.dir/mondrian.cc.o" "gcc" "src/kanon/CMakeFiles/pso_kanon.dir/mondrian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/predicate/CMakeFiles/pso_predicate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/pso_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/pso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
