# Empty dependencies file for pso_membership.
# This may be replaced when dependencies are built.
