file(REMOVE_RECURSE
  "CMakeFiles/pso_membership.dir/membership.cc.o"
  "CMakeFiles/pso_membership.dir/membership.cc.o.d"
  "libpso_membership.a"
  "libpso_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
