file(REMOVE_RECURSE
  "libpso_membership.a"
)
