file(REMOVE_RECURSE
  "libpso_predicate.a"
)
