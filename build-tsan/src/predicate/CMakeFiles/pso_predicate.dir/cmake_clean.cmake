file(REMOVE_RECURSE
  "CMakeFiles/pso_predicate.dir/predicate.cc.o"
  "CMakeFiles/pso_predicate.dir/predicate.cc.o.d"
  "CMakeFiles/pso_predicate.dir/weight.cc.o"
  "CMakeFiles/pso_predicate.dir/weight.cc.o.d"
  "libpso_predicate.a"
  "libpso_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
