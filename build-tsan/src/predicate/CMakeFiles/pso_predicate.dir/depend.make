# Empty dependencies file for pso_predicate.
# This may be replaced when dependencies are built.
