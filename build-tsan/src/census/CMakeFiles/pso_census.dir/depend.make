# Empty dependencies file for pso_census.
# This may be replaced when dependencies are built.
