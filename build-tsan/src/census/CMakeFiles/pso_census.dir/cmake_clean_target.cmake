file(REMOVE_RECURSE
  "libpso_census.a"
)
