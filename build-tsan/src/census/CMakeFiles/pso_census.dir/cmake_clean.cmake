file(REMOVE_RECURSE
  "CMakeFiles/pso_census.dir/population.cc.o"
  "CMakeFiles/pso_census.dir/population.cc.o.d"
  "CMakeFiles/pso_census.dir/reconstruct.cc.o"
  "CMakeFiles/pso_census.dir/reconstruct.cc.o.d"
  "CMakeFiles/pso_census.dir/reidentify.cc.o"
  "CMakeFiles/pso_census.dir/reidentify.cc.o.d"
  "CMakeFiles/pso_census.dir/sat_reconstruct.cc.o"
  "CMakeFiles/pso_census.dir/sat_reconstruct.cc.o.d"
  "CMakeFiles/pso_census.dir/tabulator.cc.o"
  "CMakeFiles/pso_census.dir/tabulator.cc.o.d"
  "libpso_census.a"
  "libpso_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
