
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/census/population.cc" "src/census/CMakeFiles/pso_census.dir/population.cc.o" "gcc" "src/census/CMakeFiles/pso_census.dir/population.cc.o.d"
  "/root/repo/src/census/reconstruct.cc" "src/census/CMakeFiles/pso_census.dir/reconstruct.cc.o" "gcc" "src/census/CMakeFiles/pso_census.dir/reconstruct.cc.o.d"
  "/root/repo/src/census/reidentify.cc" "src/census/CMakeFiles/pso_census.dir/reidentify.cc.o" "gcc" "src/census/CMakeFiles/pso_census.dir/reidentify.cc.o.d"
  "/root/repo/src/census/sat_reconstruct.cc" "src/census/CMakeFiles/pso_census.dir/sat_reconstruct.cc.o" "gcc" "src/census/CMakeFiles/pso_census.dir/sat_reconstruct.cc.o.d"
  "/root/repo/src/census/tabulator.cc" "src/census/CMakeFiles/pso_census.dir/tabulator.cc.o" "gcc" "src/census/CMakeFiles/pso_census.dir/tabulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solver/CMakeFiles/pso_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dp/CMakeFiles/pso_dp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/pso_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/pso_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/predicate/CMakeFiles/pso_predicate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
