# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("data")
subdirs("predicate")
subdirs("solver")
subdirs("dp")
subdirs("kanon")
subdirs("recon")
subdirs("pso")
subdirs("census")
subdirs("linkage")
subdirs("membership")
subdirs("legal")
