file(REMOVE_RECURSE
  "CMakeFiles/psoctl.dir/psoctl.cc.o"
  "CMakeFiles/psoctl.dir/psoctl.cc.o.d"
  "psoctl"
  "psoctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psoctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
