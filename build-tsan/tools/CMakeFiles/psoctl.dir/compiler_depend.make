# Empty compiler generated dependencies file for psoctl.
# This may be replaced when dependencies are built.
