// Minimal command-line flag parsing for the psoctl tool.

#ifndef PSO_TOOLS_FLAGS_H_
#define PSO_TOOLS_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace pso::tools {

/// Parses "--key=value" / "--key value" / bare positional arguments.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        std::string value = "true";
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                       0) {
          value = argv[++i];
        }
        values_[key] = value;
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  /// The worker-thread count from `--threads`. Defaults to the hardware
  /// concurrency (floor 1); `--threads=1` requests exact legacy serial
  /// execution. Deterministic experiments produce identical numbers at
  /// every value.
  size_t GetThreads(const std::string& key = "threads") const {
    int64_t v = GetInt(key, 0);
    if (v > 0) return static_cast<size_t>(v);
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pso::tools

#endif  // PSO_TOOLS_FLAGS_H_
