// Minimal command-line flag parsing for the psoctl tool and the bench
// binaries, plus strict validation helpers: a subcommand declares the
// flags it understands (FlagSpec) and ValidateFlags rejects anything
// unknown or malformed, so typos fail loudly instead of silently running
// with defaults.

#ifndef PSO_TOOLS_FLAGS_H_
#define PSO_TOOLS_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace pso::tools {

/// Parses "--key=value" / "--key value" / bare positional arguments.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        std::string value = "true";
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                       0) {
          value = argv[++i];
        }
        if (key.empty()) {
          // "--" or "--=v": not a flag name we can act on.
          parse_errors_.push_back("malformed argument '" + arg + "'");
          continue;
        }
        values_[key] = value;
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  /// The worker-thread count from `--threads`. Defaults to the hardware
  /// concurrency (floor 1); `--threads=1` requests exact legacy serial
  /// execution. Deterministic experiments produce identical numbers at
  /// every value.
  size_t GetThreads(const std::string& key = "threads") const {
    int64_t v = GetInt(key, 0);
    if (v > 0) return static_cast<size_t>(v);
    // Capability query only, no thread is created; this header must stay
    // free of pso_common so flags_test can build standalone.
    unsigned hc = std::thread::hardware_concurrency();  // pso-lint: allow(bare-mutex)
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Arguments that could not be parsed as flags at all ("--", "--=v").
  const std::vector<std::string>& parse_errors() const {
    return parse_errors_;
  }

  /// Flag names present on the command line but absent from `known`.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const std::string& k : known) {
        if (k == key) {
          found = true;
          break;
        }
      }
      if (!found) unknown.push_back(key);
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> parse_errors_;
};

/// True iff `s` is a well-formed (optionally signed) decimal integer —
/// what GetInt can parse without silently truncating garbage to 0.
inline bool WellFormedInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

/// True iff `s` parses completely as a floating-point number.
inline bool WellFormedDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

/// Declares one flag a command accepts and how its value must look.
struct FlagSpec {
  enum class Type { kString, kInt, kDouble, kBool };
  const char* name;
  Type type = Type::kString;
};

/// Checks `flags` against a command's spec table. Returns true when every
/// present flag is known and well-formed; otherwise appends one
/// human-readable complaint per problem to `errors`.
inline bool ValidateFlags(const Flags& flags,
                          const std::vector<FlagSpec>& specs,
                          std::vector<std::string>* errors) {
  bool ok = true;
  for (const std::string& e : flags.parse_errors()) {
    errors->push_back(e);
    ok = false;
  }
  std::vector<std::string> known;
  known.reserve(specs.size());
  for (const FlagSpec& spec : specs) known.push_back(spec.name);
  for (const std::string& u : flags.UnknownFlags(known)) {
    errors->push_back("unknown flag --" + u);
    ok = false;
  }
  for (const FlagSpec& spec : specs) {
    if (!flags.Has(spec.name)) continue;
    const std::string value = flags.GetString(spec.name, "");
    bool well_formed = true;
    switch (spec.type) {
      case FlagSpec::Type::kString:
        break;
      case FlagSpec::Type::kInt:
        well_formed = WellFormedInt(value);
        break;
      case FlagSpec::Type::kDouble:
        well_formed = WellFormedDouble(value);
        break;
      case FlagSpec::Type::kBool:
        well_formed = value == "true" || value == "false" || value == "0" ||
                      value == "1";
        break;
    }
    if (!well_formed) {
      errors->push_back("malformed value for --" + std::string(spec.name) +
                        ": '" + value + "'");
      ok = false;
    }
  }
  return ok;
}

}  // namespace pso::tools

#endif  // PSO_TOOLS_FLAGS_H_
