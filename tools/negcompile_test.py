#!/usr/bin/env python3
"""Drives the thread-safety negative-compile test.

A guarded-member access without its lock must make clang's
-Wthread-safety analysis reject the file; the same file with the lock
restored (-DPSO_NEGCOMPILE_FIXED) must compile. Running both directions
proves the CI gate actually distinguishes good locking from bad, rather
than passing vacuously.

Requires clang (the analysis is clang-only); exits 77 (the ctest
SKIP_RETURN_CODE) under any other compiler so GCC-only environments skip
instead of fail.

Usage:
  negcompile_test.py --compiler <cxx> --source <file> --include <dir>
      [--extra-flag <flag>]...

--extra-flag appends compiler flags to both directions; the lock-order
gate uses it for -Wthread-safety-beta (acquired_before/acquired_after
checking lives behind the beta flag). Values starting with a dash must
use the = form (--extra-flag=-Wfoo) or argparse mistakes them for an
option.

Exit codes: 0 pass, 1 fail, 77 skipped (not clang), 2 usage error.
"""

import argparse
import subprocess
import sys

SKIP = 77


def run(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True)
    return proc.returncode, proc.stdout


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True)
    parser.add_argument("--source", required=True)
    parser.add_argument("--include", action="append", default=[],
                        help="include directory (repeatable)")
    parser.add_argument("--std", default="c++20")
    parser.add_argument("--extra-flag", action="append", default=[],
                        help="extra compiler flag (repeatable)")
    args = parser.parse_args()

    code, out = run([args.compiler, "--version"])
    if code != 0:
        print(f"cannot run {args.compiler}: {out}", file=sys.stderr)
        return 2
    if "clang" not in out.lower():
        print("SKIP: -Wthread-safety needs clang; compiler is:\n" +
              out.splitlines()[0])
        return SKIP

    base = [args.compiler, "-fsyntax-only", f"-std={args.std}",
            "-Wthread-safety", "-Werror"]
    base += args.extra_flag
    for inc in args.include:
        base += ["-I", inc]

    # Control direction: with the lock restored the file must be valid.
    code, out = run(base + ["-DPSO_NEGCOMPILE_FIXED", args.source])
    if code != 0:
        print("FAIL: control build (lock held) did not compile — the "
              "harness is broken, not the locking:")
        print(out)
        return 1

    # Gate direction: without the lock the analysis must reject it.
    code, out = run(base + [args.source])
    if code == 0:
        print("FAIL: unguarded access compiled cleanly; -Wthread-safety "
              "did not catch the missing lock")
        return 1
    if "thread-safety" not in out and "guarded by" not in out:
        print("FAIL: compile failed but not with a thread-safety "
              "diagnostic:")
        print(out)
        return 1

    print("PASS: clean locking compiles; missing lock is rejected with a "
          "-Wthread-safety diagnostic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
