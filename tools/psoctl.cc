// psoctl — command-line front-end for libpso's experiments.
//
//   psoctl game    --mechanism {mondrian,datafly,count,laplace,geometric,
//                               identity,pair} --adversary {hash,minimality,
//                               trivial,counttuned,unique,decrypt}
//                  [--n 400] [--k 5] [--eps 1.0] [--trials 100]
//                  [--tau 0] [--seed 1]
//   psoctl census  [--blocks 50] [--min-size 2] [--max-size 8] [--eps 0]
//                  [--dp-median] [--sat] [--seed 1]
//   psoctl linkage [--n 10000] [--coverage 0.75] [--k 0] [--seed 1]
//   psoctl recon   [--n 64] [--queries 320] [--alpha 2.0]
//                  [--decoder {lp,lsq,exhaustive}] [--seed 1]
//   psoctl audit   [--eps 1.0] [--trials 300000] [--seed 1]
//   psoctl membership [--attrs 300] [--pool 50] [--eps 0] [--trials 200]
//
// Every subcommand also accepts --threads N (default: hardware
// concurrency; 1 = serial). Every run is deterministic given --seed at
// ANY thread count: trials draw counter-derived RNG streams and partial
// results merge in a fixed order, so --threads changes only wall clock.
//
// --metrics dumps the global metric registry (solver counters, spans,
// latency histograms, pool gauges) after the subcommand finishes.
// --metrics-format {text,json,prom} selects the rendering (default text;
// prom is Prometheus exposition text). Counters and histogram bucket
// tallies are deterministic given --seed and --threads; timers, gauges
// and latency values are wall-clock artifacts.
//
// --solver-watchdog-ms N arms a stall watchdog: any interval of N ms in
// which an active solver reports no progress heartbeat is flagged with a
// RESOURCE_EXHAUSTED-style diagnostic log line and a watchdog.stall trace
// instant (0 = disabled).
//
// --trace FILE records a hierarchical execution trace (pipeline spans,
// per-chunk parallel regions, LP pivot / SAT decision events) and writes
// it as Chrome trace-event JSON — load it at ui.perfetto.dev. --log-level
// {debug,info,warn,error} sets the structured-log threshold (default
// warn; JSON lines on stderr).
//
// --lp-backend {dense,sparse} selects the LP solver behind the decoder
// (default sparse, the revised simplex; dense is the tableau oracle).
//
// --sat-backend {dpll,cdcl} selects the SAT engine behind `census
// --sat`'s blockwise cross-check (default cdcl, the clause-learning
// engine; dpll is the chronological oracle).
//
// Unknown or malformed flags are rejected: each subcommand declares the
// flags it accepts, and anything else prints usage and exits non-zero.

#include <cstdio>
#include <memory>
#include <string>
#include <cmath>

#include "census/reidentify.h"
#include "census/sat_reconstruct.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/progress.h"
#include "common/str_util.h"
#include "common/table.h"
#include "common/trace.h"
#include "data/generators.h"
#include "dp/audit.h"
#include "dp/mechanisms.h"
#include "kanon/datafly.h"
#include "legal/verdict.h"
#include "linkage/join_attack.h"
#include "membership/membership.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "recon/attacks.h"
#include "solver/lp_backend.h"
#include "solver/sat_backend.h"
#include "tools/flags.h"

namespace pso::tools {
namespace {

/// Builds the worker pool requested by --threads (null when serial).
std::unique_ptr<ThreadPool> MakePool(const Flags& flags) {
  const size_t threads = flags.GetThreads();
  return threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: psoctl {game|census|linkage|recon|audit|membership} "
      "[--flags]\n  (see the header of tools/psoctl.cc for the full flag "
      "list)\n");
  return 2;
}

// Flags every subcommand accepts.
const std::vector<FlagSpec> kCommonFlags = {
    {"threads", FlagSpec::Type::kInt},
    {"seed", FlagSpec::Type::kInt},
    {"metrics", FlagSpec::Type::kBool},
    {"metrics-format", FlagSpec::Type::kString},
    {"solver-watchdog-ms", FlagSpec::Type::kInt},
    {"trace", FlagSpec::Type::kString},
    {"log-level", FlagSpec::Type::kString},
    {"lp-backend", FlagSpec::Type::kString},
    {"sat-backend", FlagSpec::Type::kString},
};

// The full flag table for `command`; empty for an unknown command.
std::vector<FlagSpec> CommandFlags(const std::string& command) {
  std::vector<FlagSpec> specs;
  if (command == "game") {
    specs = {{"mechanism", FlagSpec::Type::kString},
             {"adversary", FlagSpec::Type::kString},
             {"n", FlagSpec::Type::kInt},
             {"k", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"trials", FlagSpec::Type::kInt},
             {"tau", FlagSpec::Type::kDouble}};
  } else if (command == "census") {
    specs = {{"blocks", FlagSpec::Type::kInt},
             {"min-size", FlagSpec::Type::kInt},
             {"max-size", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"dp-median", FlagSpec::Type::kBool},
             {"sat", FlagSpec::Type::kBool}};
  } else if (command == "linkage") {
    specs = {{"n", FlagSpec::Type::kInt},
             {"coverage", FlagSpec::Type::kDouble},
             {"k", FlagSpec::Type::kInt}};
  } else if (command == "recon") {
    specs = {{"n", FlagSpec::Type::kInt},
             {"queries", FlagSpec::Type::kInt},
             {"alpha", FlagSpec::Type::kDouble},
             {"decoder", FlagSpec::Type::kString}};
  } else if (command == "audit") {
    specs = {{"eps", FlagSpec::Type::kDouble},
             {"trials", FlagSpec::Type::kInt}};
  } else if (command == "membership") {
    specs = {{"attrs", FlagSpec::Type::kInt},
             {"pool", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"trials", FlagSpec::Type::kInt}};
  } else {
    return specs;
  }
  specs.insert(specs.end(), kCommonFlags.begin(), kCommonFlags.end());
  return specs;
}

int RunGame(const Flags& flags) {
  Universe u = MakeGicMedicalUniverse();
  if (flags.GetInt("n", 400) < 2 || flags.GetInt("trials", 100) < 1 ||
      flags.GetInt("k", 5) < 1 || flags.GetDouble("eps", 1.0) <= 0.0) {
    std::fprintf(stderr,
                 "invalid flags: need --n >= 2, --trials >= 1, --k >= 1, "
                 "--eps > 0\n");
    return 2;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n", 400));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const double eps = flags.GetDouble("eps", 1.0);
  auto q = MakeAttributeEquals(3, 0, "sex");

  std::string mech_name = flags.GetString("mechanism", "mondrian");
  MechanismRef mech;
  if (mech_name == "mondrian" || mech_name == "datafly") {
    mech = MakeKAnonymityMechanism(
        mech_name == "mondrian" ? KAnonAlgorithm::kMondrian
                                : KAnonAlgorithm::kDatafly,
        k, kanon::HierarchySet::Defaults(u.schema), {});
  } else if (mech_name == "count") {
    mech = MakeCountMechanism(q, "sex=F");
  } else if (mech_name == "laplace") {
    mech = MakeLaplaceCountMechanism(q, "sex=F", eps);
  } else if (mech_name == "geometric") {
    mech = MakeGeometricCountMechanism(q, "sex=F", eps);
  } else if (mech_name == "identity") {
    mech = MakeIdentityMechanism();
  } else if (mech_name == "pair") {
    mech = MakeBundleMechanism(
        {MakeCiphertextMechanism(), MakePadMechanism()});
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mech_name.c_str());
    return 2;
  }

  std::string adv_name = flags.GetString("adversary", "minimality");
  AdversaryRef adv;
  if (adv_name == "hash") {
    adv = MakeKAnonHashAdversary();
  } else if (adv_name == "minimality") {
    adv = MakeKAnonMinimalityAdversary();
  } else if (adv_name == "trivial") {
    adv = MakeTrivialHashAdversary(1.0 / (10.0 * static_cast<double>(n)));
  } else if (adv_name == "counttuned") {
    adv = MakeCountTunedAdversary(q, "sex=F");
  } else if (adv_name == "unique") {
    adv = MakeUniqueRecordAdversary();
  } else if (adv_name == "decrypt") {
    adv = MakeDecryptPairAdversary();
  } else {
    std::fprintf(stderr, "unknown adversary '%s'\n", adv_name.c_str());
    return 2;
  }

  auto pool = MakePool(flags);
  PsoGameOptions opts;
  opts.trials = static_cast<size_t>(flags.GetInt("trials", 100));
  opts.weight_threshold = flags.GetDouble("tau", 0.0);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opts.pool = pool.get();
  PsoGame game(u.distribution, n, opts);
  PsoGameResult result = game.Run(*mech, *adv);
  RecordPoolGauges(pool.get());
  std::printf("%s\n", result.Summary().c_str());

  legal::LegalClaim claim =
      legal::EvaluateSinglingOutClaim(mech->Name(), {result});
  std::printf("\n%s", claim.ToString().c_str());
  return 0;
}

int RunCensus(const Flags& flags) {
  if (flags.GetInt("blocks", 50) < 1 || flags.GetInt("min-size", 2) < 1 ||
      flags.GetInt("max-size", 8) < flags.GetInt("min-size", 2)) {
    std::fprintf(stderr,
                 "invalid flags: need --blocks >= 1 and 1 <= --min-size <= "
                 "--max-size\n");
    return 2;
  }
  census::PopulationOptions popts;
  popts.num_blocks = static_cast<size_t>(flags.GetInt("blocks", 50));
  popts.min_block_size = static_cast<size_t>(flags.GetInt("min-size", 2));
  popts.max_block_size = static_cast<size_t>(flags.GetInt("max-size", 8));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  census::Population pop = census::GeneratePopulation(popts, rng);

  const double eps = flags.GetDouble("eps", 0.0);
  std::vector<census::BlockTables> tables;
  for (const auto& b : pop.blocks) {
    tables.push_back(eps > 0.0
                         ? census::TabulateDp(b, eps, rng,
                                              flags.GetBool("dp-median",
                                                            false))
                         : census::Tabulate(b));
  }
  auto pool = MakePool(flags);
  census::ReconstructOptions ropts;
  ropts.pool = pool.get();
  std::vector<census::BlockReconstruction> per_block;
  census::ReconstructionReport recon =
      census::ReconstructPopulation(pop, tables, ropts, &per_block);
  census::CommercialOptions copts;
  auto commercial = census::SimulateCommercialDatabase(pop, copts, rng);
  census::ReidentificationReport reid = census::Reidentify(
      pop, per_block, commercial, /*age_tolerance=*/1, pool.get());
  RecordPoolGauges(pool.get());

  // --sat: cross-check each block on the process-default SAT backend
  // (--sat-backend selects it) and report agreement with the CSP engine
  // plus budget exhaustions as first-class outcomes.
  size_t sat_checked = 0;
  size_t sat_agree = 0;
  size_t sat_exhausted = 0;
  size_t sat_decisions = 0;
  const bool run_sat = flags.GetBool("sat", false);
  if (run_sat) {
    for (size_t b = 0; b < pop.blocks.size(); ++b) {
      auto sat =
          census::ReconstructBlockSat(tables[b], /*max_decisions=*/500000);
      if (!sat.ok()) continue;
      ++sat_checked;
      sat_decisions += sat->decisions;
      if (sat->budget_exhausted) {
        ++sat_exhausted;
        continue;
      }
      // Exact tables are always satisfiable by the true block; noisy
      // tables may admit no candidate multiset at all. Agreement means
      // the SAT verdict matches the CSP engine's.
      const bool csp_found = per_block[b].solutions_found > 0;
      if (sat->satisfiable == csp_found) ++sat_agree;
    }
  }

  TextTable table({"metric", "value"});
  table.AddRow({"persons", StrFormat("%zu", pop.total_persons)});
  table.AddRow({"tables", eps > 0.0 ? StrFormat("DP (eps=%.2f)", eps)
                                    : "exact"});
  table.AddRow({"blocks solved exactly",
                StrFormat("%.1f%%", 100.0 * recon.block_unique_fraction())});
  table.AddRow({"persons reconstructed exactly",
                StrFormat("%.1f%%", 100.0 * recon.person_exact_fraction())});
  table.AddRow({"putative re-identifications",
                StrFormat("%.2f%%", 100.0 * reid.putative_rate())});
  table.AddRow({"confirmed re-identifications",
                StrFormat("%.2f%%", 100.0 * reid.confirmed_rate())});
  if (run_sat) {
    table.AddRow({"SAT cross-check backend", DefaultSatBackendName()});
    table.AddRow({"SAT blocks agreeing",
                  StrFormat("%zu/%zu", sat_agree, sat_checked)});
    table.AddRow({"SAT budget exhausted", StrFormat("%zu", sat_exhausted)});
    table.AddRow({"SAT decisions", StrFormat("%zu", sat_decisions)});
  }
  table.Print();
  return 0;
}

int RunLinkage(const Flags& flags) {
  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  linkage::IdentifiedPopulation pop = linkage::SamplePopulation(
      u, static_cast<size_t>(flags.GetInt("n", 10000)), rng);
  std::vector<size_t> qi = {0, 1, 2, 3};
  auto voters = linkage::BuildVoterFile(
      pop, qi, flags.GetDouble("coverage", 0.75), rng);

  const size_t k = static_cast<size_t>(flags.GetInt("k", 0));
  linkage::LinkageReport report;
  if (k >= 2) {
    kanon::DataflyOptions dopts;
    dopts.k = k;
    dopts.qi_attrs = qi;
    dopts.max_suppression = 0.05;
    auto anon = kanon::DataflyAnonymize(
        pop.records, kanon::HierarchySet::Defaults(u.schema), dopts);
    if (!anon.ok()) {
      std::fprintf(stderr, "anonymization failed: %s\n",
                   anon.status().ToString().c_str());
      return 1;
    }
    report =
        linkage::JoinAttackGeneralized(pop, anon->generalized, voters, qi);
  } else {
    report = linkage::JoinAttack(pop, voters, qi);
  }
  std::printf(
      "release=%s  records=%zu  voters=%zu  claims=%zu  confirmed=%zu "
      "(%.2f%% of the population)\n",
      k >= 2 ? StrFormat("%zu-anonymous", k).c_str() : "raw",
      report.released_records, report.voter_entries, report.claims,
      report.confirmed, 100.0 * report.confirmed_rate());
  return 0;
}

int RunRecon(const Flags& flags) {
  const size_t n = static_cast<size_t>(flags.GetInt("n", 64));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 320));
  const double alpha = flags.GetDouble("alpha", 2.0);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  auto secret = recon::RandomBits(n, rng);
  recon::BoundedNoiseOracle oracle(secret, alpha, 17);

  std::string decoder = flags.GetString("decoder", "lsq");
  recon::Reconstruction result;
  if (decoder == "lp") {
    auto r = recon::LpReconstruct(oracle, queries, rng);
    if (!r.ok()) {
      std::fprintf(stderr, "LP failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    result = std::move(r).value();
  } else if (decoder == "lsq") {
    result = recon::LeastSquaresReconstruct(oracle, queries, rng);
  } else if (decoder == "exhaustive") {
    auto pool = MakePool(flags);
    result = recon::ExhaustiveReconstruct(oracle, alpha, pool.get());
    RecordPoolGauges(pool.get());
  } else {
    std::fprintf(stderr, "unknown decoder '%s'\n", decoder.c_str());
    return 2;
  }
  std::printf("n=%zu queries=%zu alpha=%.2f decoder=%s -> accuracy %.3f\n",
              n, result.queries_used, alpha, decoder.c_str(),
              recon::FractionAgree(result.estimate, secret));
  return 0;
}

int RunAudit(const Flags& flags) {
  const double eps = flags.GetDouble("eps", 1.0);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 300000));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  dp::BucketizedMechanism mech = [eps](int which, Rng& r) {
    double count = which == 0 ? 10.0 : 11.0;
    return static_cast<int64_t>(
        std::llround((count + r.Laplace(1.0 / eps)) * 2.0));
  };
  dp::AuditResult audit = dp::AuditPrivacyLoss(mech, trials, rng, 2000);
  std::printf(
      "Laplace count, declared eps=%.3f: measured eps-hat=%.3f over %zu "
      "buckets (%zu trials per input)\n",
      eps, audit.empirical_eps, audit.buckets_compared,
      audit.trials_per_input);
  return 0;
}

int RunMembership(const Flags& flags) {
  Universe u = MakeGenotypeUniverse(flags.GetInt("attrs", 300),
                                    /*freq_seed=*/0x6e0);
  auto workers = MakePool(flags);
  membership::MembershipOptions opts;
  opts.pool_size = static_cast<size_t>(flags.GetInt("pool", 50));
  opts.trials = static_cast<size_t>(flags.GetInt("trials", 200));
  opts.eps = flags.GetDouble("eps", 0.0);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opts.pool = workers.get();
  membership::MembershipResult r =
      membership::RunMembershipExperiment(u, opts);
  RecordPoolGauges(workers.get());
  std::printf(
      "attrs=%lld pool=%zu eps=%s -> AUC=%.3f advantage=%.3f "
      "E[T|in]=%.2f E[T|out]=%.2f\n",
      (long long)flags.GetInt("attrs", 300), opts.pool_size,
      opts.eps > 0 ? StrFormat("%.2f", opts.eps).c_str() : "exact", r.auc,
      r.advantage, r.mean_in, r.mean_out);
  return 0;
}

int Dispatch(const std::string& command, const Flags& flags) {
  if (command == "game") return RunGame(flags);
  if (command == "census") return RunCensus(flags);
  if (command == "linkage") return RunLinkage(flags);
  if (command == "recon") return RunRecon(flags);
  if (command == "audit") return RunAudit(flags);
  if (command == "membership") return RunMembership(flags);
  return Usage();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];

  std::vector<FlagSpec> specs = CommandFlags(command);
  if (specs.empty()) {
    std::fprintf(stderr, "psoctl: unknown command '%s'\n", command.c_str());
    return Usage();
  }
  std::vector<std::string> errors;
  if (!ValidateFlags(flags, specs, &errors)) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "psoctl %s: %s\n", command.c_str(), e.c_str());
    }
    return Usage();
  }

  const std::string level_name = flags.GetString("log-level", "");
  if (!level_name.empty()) {
    log::Level level;
    if (!log::ParseLevel(level_name, &level)) {
      std::fprintf(stderr,
                   "psoctl: invalid --log-level '%s' "
                   "(use debug|info|warn|error)\n",
                   level_name.c_str());
      return Usage();
    }
    log::SetMinLevel(level);
  }
  const std::string lp_backend = flags.GetString("lp-backend", "");
  if (!lp_backend.empty()) {
    Status set = SetDefaultLpBackend(lp_backend);
    if (!set.ok()) {
      std::fprintf(stderr, "psoctl: %s\n", set.ToString().c_str());
      return Usage();
    }
  }
  const std::string sat_backend = flags.GetString("sat-backend", "");
  if (!sat_backend.empty()) {
    Status set = SetDefaultSatBackend(sat_backend);
    if (!set.ok()) {
      std::fprintf(stderr, "psoctl: %s\n", set.ToString().c_str());
      return Usage();
    }
  }
  const std::string metrics_format = flags.GetString("metrics-format", "text");
  if (metrics_format != "text" && metrics_format != "json" &&
      metrics_format != "prom") {
    std::fprintf(stderr,
                 "psoctl: invalid --metrics-format '%s' "
                 "(use text|json|prom)\n",
                 metrics_format.c_str());
    return Usage();
  }
  const int64_t watchdog_ms = flags.GetInt("solver-watchdog-ms", 0);
  if (watchdog_ms > 0) {
    progress::Watchdog::Global().Start(watchdog_ms);
  }
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    trace::Collector::Global().Enable();
    // Remembered so an aborting PSO_CHECK still flushes a partial trace.
    trace::Collector::Global().SetFlushPath(trace_path);
  }

  int rc = Dispatch(command, flags);
  if (watchdog_ms > 0) progress::Watchdog::Global().Stop();
  if (flags.GetBool("metrics", false)) {
    const metrics::Snapshot snap = metrics::Registry::Global().TakeSnapshot();
    if (metrics_format == "json") {
      std::printf("%s\n", metrics::SnapshotToJson(snap).c_str());
    } else if (metrics_format == "prom") {
      std::printf("%s", metrics::ExpositionToProm(snap).c_str());
    } else {
      std::printf("\n-- metric registry --\n%s",
                  metrics::SnapshotToText(snap).c_str());
    }
  }
  if (!trace_path.empty()) {
    if (trace::Collector::Global().WriteChromeJson(trace_path)) {
      std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    }
    trace::Collector::Global().Disable();
  }
  return rc;
}

}  // namespace
}  // namespace pso::tools

int main(int argc, char** argv) { return pso::tools::Main(argc, argv); }
