// psoctl — command-line front-end for libpso's experiments.
//
//   psoctl game    --mechanism {mondrian,datafly,count,laplace,geometric,
//                               identity,pair} --adversary {hash,minimality,
//                               trivial,counttuned,unique,decrypt}
//                  [--n 400] [--k 5] [--eps 1.0] [--trials 100]
//                  [--tau 0] [--seed 1]
//   psoctl census  [--blocks 50] [--min-size 2] [--max-size 8] [--eps 0]
//                  [--dp-median] [--sat] [--seed 1]
//   psoctl linkage [--n 10000] [--coverage 0.75] [--k 0] [--seed 1]
//   psoctl recon   [--n 64] [--queries 320] [--alpha 2.0]
//                  [--decoder {lp,lsq,exhaustive}] [--seed 1]
//   psoctl audit   [--eps 1.0] [--trials 300000] [--seed 1]
//   psoctl membership [--attrs 300] [--pool 50] [--eps 0] [--trials 200]
//   psoctl serve   [--n 48] [--eps 0] [--budget 0] [--port 0]
//                  [--port-file FILE] [--max-batch 64] [--seed 1]
//   psoctl load    {--port P | --port-file FILE} [--clients 64]
//                  [--queries 10] [--batch 8] [--decoder {lp,lsq,none}]
//                  [--transcript FILE] [--min-accuracy A]
//                  [--max-accuracy A] [--expect-rejections] [--seed 1]
//
// `serve` runs a statistical-query service over a random secret dataset
// drawn from --seed: counting queries on 127.0.0.1 (--port 0 picks an
// ephemeral port, published via --port-file). With --eps > 0 every
// answer carries Laplace(1/eps) noise and charges the issuing client's
// budget (--budget, 0 = unmetered); an over-budget client is refused.
// SIGTERM/SIGINT shut it down cleanly (in-flight connections drain).
//
// `load` attacks a running `serve`: --clients concurrent clients each
// issue --queries random subset queries (pipelined in batches of
// --batch), the (query, answer) transcript is recorded, and the chosen
// decoder reconstructs the secret FROM THE TRANSCRIPT ALONE. Accuracy is
// scored by regenerating the secret from the shared --seed. The
// --min-accuracy / --max-accuracy / --expect-rejections gates turn the
// run into an assertion (exit 1 on violation): exact serving must
// reconstruct perfectly, DP serving must degrade and reject.
//
// Every subcommand also accepts --threads N (default: hardware
// concurrency; 1 = serial). Every run is deterministic given --seed at
// ANY thread count: trials draw counter-derived RNG streams and partial
// results merge in a fixed order, so --threads changes only wall clock.
//
// --metrics dumps the global metric registry (solver counters, spans,
// latency histograms, pool gauges) after the subcommand finishes.
// --metrics-format {text,json,prom} selects the rendering (default text;
// prom is Prometheus exposition text). Counters and histogram bucket
// tallies are deterministic given --seed and --threads; timers, gauges
// and latency values are wall-clock artifacts.
//
// --solver-watchdog-ms N arms a stall watchdog: any interval of N ms in
// which an active solver reports no progress heartbeat is flagged with a
// RESOURCE_EXHAUSTED-style diagnostic log line and a watchdog.stall trace
// instant (0 = disabled).
//
// --trace FILE records a hierarchical execution trace (pipeline spans,
// per-chunk parallel regions, LP pivot / SAT decision events) and writes
// it as Chrome trace-event JSON — load it at ui.perfetto.dev. --log-level
// {debug,info,warn,error} sets the structured-log threshold (default
// warn; JSON lines on stderr).
//
// --lp-backend {dense,sparse} selects the LP solver behind the decoder
// (default sparse, the revised simplex; dense is the tableau oracle).
//
// --sat-backend {dpll,cdcl} selects the SAT engine behind `census
// --sat`'s blockwise cross-check (default cdcl, the clause-learning
// engine; dpll is the chronological oracle).
//
// Unknown or malformed flags are rejected: each subcommand declares the
// flags it accepts, and anything else prints usage and exits non-zero.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "census/reidentify.h"
#include "census/sat_reconstruct.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/progress.h"
#include "common/str_util.h"
#include "common/table.h"
#include "common/trace.h"
#include "data/generators.h"
#include "dp/audit.h"
#include "dp/mechanisms.h"
#include "kanon/datafly.h"
#include "legal/verdict.h"
#include "linkage/join_attack.h"
#include "membership/membership.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "recon/attacks.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/query_service.h"
#include "service/server.h"
#include "solver/lp_backend.h"
#include "solver/sat_backend.h"
#include "tools/flags.h"

namespace pso::tools {
namespace {

/// Builds the worker pool requested by --threads (null when serial).
std::unique_ptr<ThreadPool> MakePool(const Flags& flags) {
  const size_t threads = flags.GetThreads();
  return threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: psoctl {game|census|linkage|recon|audit|membership|serve|"
      "load} [--flags]\n  (see the header of tools/psoctl.cc for the full "
      "flag list)\n");
  return 2;
}

// Flags every subcommand accepts.
const std::vector<FlagSpec> kCommonFlags = {
    {"threads", FlagSpec::Type::kInt},
    {"seed", FlagSpec::Type::kInt},
    {"metrics", FlagSpec::Type::kBool},
    {"metrics-format", FlagSpec::Type::kString},
    {"solver-watchdog-ms", FlagSpec::Type::kInt},
    {"trace", FlagSpec::Type::kString},
    {"log-level", FlagSpec::Type::kString},
    {"lp-backend", FlagSpec::Type::kString},
    {"sat-backend", FlagSpec::Type::kString},
};

// The full flag table for `command`; empty for an unknown command.
std::vector<FlagSpec> CommandFlags(const std::string& command) {
  std::vector<FlagSpec> specs;
  if (command == "game") {
    specs = {{"mechanism", FlagSpec::Type::kString},
             {"adversary", FlagSpec::Type::kString},
             {"n", FlagSpec::Type::kInt},
             {"k", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"trials", FlagSpec::Type::kInt},
             {"tau", FlagSpec::Type::kDouble}};
  } else if (command == "census") {
    specs = {{"blocks", FlagSpec::Type::kInt},
             {"min-size", FlagSpec::Type::kInt},
             {"max-size", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"dp-median", FlagSpec::Type::kBool},
             {"sat", FlagSpec::Type::kBool}};
  } else if (command == "linkage") {
    specs = {{"n", FlagSpec::Type::kInt},
             {"coverage", FlagSpec::Type::kDouble},
             {"k", FlagSpec::Type::kInt}};
  } else if (command == "recon") {
    specs = {{"n", FlagSpec::Type::kInt},
             {"queries", FlagSpec::Type::kInt},
             {"alpha", FlagSpec::Type::kDouble},
             {"decoder", FlagSpec::Type::kString}};
  } else if (command == "audit") {
    specs = {{"eps", FlagSpec::Type::kDouble},
             {"trials", FlagSpec::Type::kInt}};
  } else if (command == "membership") {
    specs = {{"attrs", FlagSpec::Type::kInt},
             {"pool", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"trials", FlagSpec::Type::kInt}};
  } else if (command == "serve") {
    specs = {{"n", FlagSpec::Type::kInt},
             {"eps", FlagSpec::Type::kDouble},
             {"budget", FlagSpec::Type::kDouble},
             {"port", FlagSpec::Type::kInt},
             {"port-file", FlagSpec::Type::kString},
             {"max-batch", FlagSpec::Type::kInt}};
  } else if (command == "load") {
    specs = {{"port", FlagSpec::Type::kInt},
             {"port-file", FlagSpec::Type::kString},
             {"clients", FlagSpec::Type::kInt},
             {"queries", FlagSpec::Type::kInt},
             {"batch", FlagSpec::Type::kInt},
             {"decoder", FlagSpec::Type::kString},
             {"transcript", FlagSpec::Type::kString},
             {"min-accuracy", FlagSpec::Type::kDouble},
             {"max-accuracy", FlagSpec::Type::kDouble},
             {"expect-rejections", FlagSpec::Type::kBool}};
  } else {
    return specs;
  }
  specs.insert(specs.end(), kCommonFlags.begin(), kCommonFlags.end());
  return specs;
}

int RunGame(const Flags& flags) {
  Universe u = MakeGicMedicalUniverse();
  if (flags.GetInt("n", 400) < 2 || flags.GetInt("trials", 100) < 1 ||
      flags.GetInt("k", 5) < 1 || flags.GetDouble("eps", 1.0) <= 0.0) {
    std::fprintf(stderr,
                 "invalid flags: need --n >= 2, --trials >= 1, --k >= 1, "
                 "--eps > 0\n");
    return 2;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n", 400));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const double eps = flags.GetDouble("eps", 1.0);
  auto q = MakeAttributeEquals(3, 0, "sex");

  std::string mech_name = flags.GetString("mechanism", "mondrian");
  MechanismRef mech;
  if (mech_name == "mondrian" || mech_name == "datafly") {
    mech = MakeKAnonymityMechanism(
        mech_name == "mondrian" ? KAnonAlgorithm::kMondrian
                                : KAnonAlgorithm::kDatafly,
        k, kanon::HierarchySet::Defaults(u.schema), {});
  } else if (mech_name == "count") {
    mech = MakeCountMechanism(q, "sex=F");
  } else if (mech_name == "laplace") {
    mech = MakeLaplaceCountMechanism(q, "sex=F", eps);
  } else if (mech_name == "geometric") {
    mech = MakeGeometricCountMechanism(q, "sex=F", eps);
  } else if (mech_name == "identity") {
    mech = MakeIdentityMechanism();
  } else if (mech_name == "pair") {
    mech = MakeBundleMechanism(
        {MakeCiphertextMechanism(), MakePadMechanism()});
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mech_name.c_str());
    return 2;
  }

  std::string adv_name = flags.GetString("adversary", "minimality");
  AdversaryRef adv;
  if (adv_name == "hash") {
    adv = MakeKAnonHashAdversary();
  } else if (adv_name == "minimality") {
    adv = MakeKAnonMinimalityAdversary();
  } else if (adv_name == "trivial") {
    adv = MakeTrivialHashAdversary(1.0 / (10.0 * static_cast<double>(n)));
  } else if (adv_name == "counttuned") {
    adv = MakeCountTunedAdversary(q, "sex=F");
  } else if (adv_name == "unique") {
    adv = MakeUniqueRecordAdversary();
  } else if (adv_name == "decrypt") {
    adv = MakeDecryptPairAdversary();
  } else {
    std::fprintf(stderr, "unknown adversary '%s'\n", adv_name.c_str());
    return 2;
  }

  auto pool = MakePool(flags);
  PsoGameOptions opts;
  opts.trials = static_cast<size_t>(flags.GetInt("trials", 100));
  opts.weight_threshold = flags.GetDouble("tau", 0.0);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opts.pool = pool.get();
  PsoGame game(u.distribution, n, opts);
  PsoGameResult result = game.Run(*mech, *adv);
  RecordPoolGauges(pool.get());
  std::printf("%s\n", result.Summary().c_str());

  legal::LegalClaim claim =
      legal::EvaluateSinglingOutClaim(mech->Name(), {result});
  std::printf("\n%s", claim.ToString().c_str());
  return 0;
}

int RunCensus(const Flags& flags) {
  if (flags.GetInt("blocks", 50) < 1 || flags.GetInt("min-size", 2) < 1 ||
      flags.GetInt("max-size", 8) < flags.GetInt("min-size", 2)) {
    std::fprintf(stderr,
                 "invalid flags: need --blocks >= 1 and 1 <= --min-size <= "
                 "--max-size\n");
    return 2;
  }
  census::PopulationOptions popts;
  popts.num_blocks = static_cast<size_t>(flags.GetInt("blocks", 50));
  popts.min_block_size = static_cast<size_t>(flags.GetInt("min-size", 2));
  popts.max_block_size = static_cast<size_t>(flags.GetInt("max-size", 8));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  census::Population pop = census::GeneratePopulation(popts, rng);

  const double eps = flags.GetDouble("eps", 0.0);
  std::vector<census::BlockTables> tables;
  for (const auto& b : pop.blocks) {
    tables.push_back(eps > 0.0
                         ? census::TabulateDp(b, eps, rng,
                                              flags.GetBool("dp-median",
                                                            false))
                         : census::Tabulate(b));
  }
  auto pool = MakePool(flags);
  census::ReconstructOptions ropts;
  ropts.pool = pool.get();
  std::vector<census::BlockReconstruction> per_block;
  census::ReconstructionReport recon =
      census::ReconstructPopulation(pop, tables, ropts, &per_block);
  census::CommercialOptions copts;
  auto commercial = census::SimulateCommercialDatabase(pop, copts, rng);
  census::ReidentificationReport reid = census::Reidentify(
      pop, per_block, commercial, /*age_tolerance=*/1, pool.get());
  RecordPoolGauges(pool.get());

  // --sat: cross-check each block on the process-default SAT backend
  // (--sat-backend selects it) and report agreement with the CSP engine
  // plus budget exhaustions as first-class outcomes.
  size_t sat_checked = 0;
  size_t sat_agree = 0;
  size_t sat_exhausted = 0;
  size_t sat_decisions = 0;
  const bool run_sat = flags.GetBool("sat", false);
  if (run_sat) {
    for (size_t b = 0; b < pop.blocks.size(); ++b) {
      auto sat =
          census::ReconstructBlockSat(tables[b], /*max_decisions=*/500000);
      if (!sat.ok()) continue;
      ++sat_checked;
      sat_decisions += sat->decisions;
      if (sat->budget_exhausted) {
        ++sat_exhausted;
        continue;
      }
      // Exact tables are always satisfiable by the true block; noisy
      // tables may admit no candidate multiset at all. Agreement means
      // the SAT verdict matches the CSP engine's.
      const bool csp_found = per_block[b].solutions_found > 0;
      if (sat->satisfiable == csp_found) ++sat_agree;
    }
  }

  TextTable table({"metric", "value"});
  table.AddRow({"persons", StrFormat("%zu", pop.total_persons)});
  table.AddRow({"tables", eps > 0.0 ? StrFormat("DP (eps=%.2f)", eps)
                                    : "exact"});
  table.AddRow({"blocks solved exactly",
                StrFormat("%.1f%%", 100.0 * recon.block_unique_fraction())});
  table.AddRow({"persons reconstructed exactly",
                StrFormat("%.1f%%", 100.0 * recon.person_exact_fraction())});
  table.AddRow({"putative re-identifications",
                StrFormat("%.2f%%", 100.0 * reid.putative_rate())});
  table.AddRow({"confirmed re-identifications",
                StrFormat("%.2f%%", 100.0 * reid.confirmed_rate())});
  if (run_sat) {
    table.AddRow({"SAT cross-check backend", DefaultSatBackendName()});
    table.AddRow({"SAT blocks agreeing",
                  StrFormat("%zu/%zu", sat_agree, sat_checked)});
    table.AddRow({"SAT budget exhausted", StrFormat("%zu", sat_exhausted)});
    table.AddRow({"SAT decisions", StrFormat("%zu", sat_decisions)});
  }
  table.Print();
  return 0;
}

int RunLinkage(const Flags& flags) {
  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  linkage::IdentifiedPopulation pop = linkage::SamplePopulation(
      u, static_cast<size_t>(flags.GetInt("n", 10000)), rng);
  std::vector<size_t> qi = {0, 1, 2, 3};
  auto voters = linkage::BuildVoterFile(
      pop, qi, flags.GetDouble("coverage", 0.75), rng);

  const size_t k = static_cast<size_t>(flags.GetInt("k", 0));
  linkage::LinkageReport report;
  if (k >= 2) {
    kanon::DataflyOptions dopts;
    dopts.k = k;
    dopts.qi_attrs = qi;
    dopts.max_suppression = 0.05;
    auto anon = kanon::DataflyAnonymize(
        pop.records, kanon::HierarchySet::Defaults(u.schema), dopts);
    if (!anon.ok()) {
      std::fprintf(stderr, "anonymization failed: %s\n",
                   anon.status().ToString().c_str());
      return 1;
    }
    report =
        linkage::JoinAttackGeneralized(pop, anon->generalized, voters, qi);
  } else {
    report = linkage::JoinAttack(pop, voters, qi);
  }
  std::printf(
      "release=%s  records=%zu  voters=%zu  claims=%zu  confirmed=%zu "
      "(%.2f%% of the population)\n",
      k >= 2 ? StrFormat("%zu-anonymous", k).c_str() : "raw",
      report.released_records, report.voter_entries, report.claims,
      report.confirmed, 100.0 * report.confirmed_rate());
  return 0;
}

int RunRecon(const Flags& flags) {
  const size_t n = static_cast<size_t>(flags.GetInt("n", 64));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 320));
  const double alpha = flags.GetDouble("alpha", 2.0);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  auto secret = recon::RandomBits(n, rng);
  recon::BoundedNoiseOracle oracle(secret, alpha, 17);

  std::string decoder = flags.GetString("decoder", "lsq");
  recon::Reconstruction result;
  if (decoder == "lp") {
    auto r = recon::LpReconstruct(oracle, queries, rng);
    if (!r.ok()) {
      std::fprintf(stderr, "LP failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    result = std::move(r).value();
  } else if (decoder == "lsq") {
    result = recon::LeastSquaresReconstruct(oracle, queries, rng);
  } else if (decoder == "exhaustive") {
    auto pool = MakePool(flags);
    result = recon::ExhaustiveReconstruct(oracle, alpha, pool.get());
    RecordPoolGauges(pool.get());
  } else {
    std::fprintf(stderr, "unknown decoder '%s'\n", decoder.c_str());
    return 2;
  }
  std::printf("n=%zu queries=%zu alpha=%.2f decoder=%s -> accuracy %.3f\n",
              n, result.queries_used, alpha, decoder.c_str(),
              recon::FractionAgree(result.estimate, secret));
  return 0;
}

int RunAudit(const Flags& flags) {
  const double eps = flags.GetDouble("eps", 1.0);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 300000));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  dp::BucketizedMechanism mech = [eps](int which, Rng& r) {
    double count = which == 0 ? 10.0 : 11.0;
    return static_cast<int64_t>(
        std::llround((count + r.Laplace(1.0 / eps)) * 2.0));
  };
  dp::AuditResult audit = dp::AuditPrivacyLoss(mech, trials, rng, 2000);
  std::printf(
      "Laplace count, declared eps=%.3f: measured eps-hat=%.3f over %zu "
      "buckets (%zu trials per input)\n",
      eps, audit.empirical_eps, audit.buckets_compared,
      audit.trials_per_input);
  return 0;
}

int RunMembership(const Flags& flags) {
  Universe u = MakeGenotypeUniverse(flags.GetInt("attrs", 300),
                                    /*freq_seed=*/0x6e0);
  auto workers = MakePool(flags);
  membership::MembershipOptions opts;
  opts.pool_size = static_cast<size_t>(flags.GetInt("pool", 50));
  opts.trials = static_cast<size_t>(flags.GetInt("trials", 200));
  opts.eps = flags.GetDouble("eps", 0.0);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opts.pool = workers.get();
  membership::MembershipResult r =
      membership::RunMembershipExperiment(u, opts);
  RecordPoolGauges(workers.get());
  std::printf(
      "attrs=%lld pool=%zu eps=%s -> AUC=%.3f advantage=%.3f "
      "E[T|in]=%.2f E[T|out]=%.2f\n",
      (long long)flags.GetInt("attrs", 300), opts.pool_size,
      opts.eps > 0 ? StrFormat("%.2f", opts.eps).c_str() : "exact", r.auc,
      r.advantage, r.mean_in, r.mean_out);
  return 0;
}

// The serve signal handler's target. RequestShutdown is async-signal-
// safe (atomic store + shutdown(2)), so the handler does nothing else.
std::atomic<service::QueryServer*> g_serve_server{nullptr};

extern "C" void ServeSignalHandler(int) {
  service::QueryServer* server =
      g_serve_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestShutdown();
}

int RunServe(const Flags& flags) {
  if (flags.GetInt("n", 48) < 1 || flags.GetInt("max-batch", 64) < 1 ||
      flags.GetDouble("eps", 0.0) < 0.0 ||
      flags.GetDouble("budget", 0.0) < 0.0) {
    std::fprintf(stderr,
                 "invalid flags: need --n >= 1, --max-batch >= 1, "
                 "--eps >= 0, --budget >= 0\n");
    return 2;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n", 48));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  Rng rng(seed);
  service::QueryServiceOptions sopts;
  sopts.eps_per_query = flags.GetDouble("eps", 0.0);
  sopts.client_budget_eps = flags.GetDouble("budget", 0.0);
  sopts.noise_seed = seed;
  sopts.max_batch = static_cast<size_t>(flags.GetInt("max-batch", 64));
  service::QueryService svc(recon::RandomBits(n, rng), sopts);

  auto pool = MakePool(flags);
  service::QueryServerOptions ropts;
  ropts.port = static_cast<int>(flags.GetInt("port", 0));
  ropts.port_file = flags.GetString("port-file", "");
  ropts.pool = pool.get();
  service::QueryServer server(&svc, ropts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    return 1;
  }
  g_serve_server.store(&server, std::memory_order_release);
  std::signal(SIGTERM, ServeSignalHandler);
  std::signal(SIGINT, ServeSignalHandler);
  std::printf("serving n=%zu eps=%.3g budget=%.3g port=%d\n", n,
              sopts.eps_per_query, sopts.client_budget_eps, server.port());
  std::fflush(stdout);
  server.Run();
  g_serve_server.store(nullptr, std::memory_order_release);
  RecordPoolGauges(pool.get());
  std::printf("shutdown: connections=%llu answered=%llu rejected=%llu\n",
              static_cast<unsigned long long>(server.connections()),
              static_cast<unsigned long long>(svc.queries_answered()),
              static_cast<unsigned long long>(svc.queries_rejected()));
  return 0;
}

int RunLoadCmd(const Flags& flags) {
  int port = static_cast<int>(flags.GetInt("port", 0));
  const std::string port_file = flags.GetString("port-file", "");
  if (port <= 0 && !port_file.empty()) {
    FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr || std::fscanf(f, "%d", &port) != 1) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "load: cannot read port from %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fclose(f);
  }
  if (port <= 0) {
    std::fprintf(stderr, "load: need --port or --port-file\n");
    return 2;
  }
  if (flags.GetInt("clients", 64) < 1 || flags.GetInt("queries", 10) < 1 ||
      flags.GetInt("batch", 8) < 1) {
    std::fprintf(stderr,
                 "invalid flags: need --clients >= 1, --queries >= 1, "
                 "--batch >= 1\n");
    return 2;
  }
  const std::string decoder = flags.GetString("decoder", "lp");
  if (decoder != "lp" && decoder != "lsq" && decoder != "none") {
    std::fprintf(stderr, "unknown decoder '%s' (use lp|lsq|none)\n",
                 decoder.c_str());
    return 2;
  }

  // Probe the service parameters on a throwaway connection; the dataset
  // size drives query generation and secret regeneration.
  Result<std::unique_ptr<service::SocketTransport>> probe =
      service::SocketTransport::Connect(port);
  if (!probe.ok()) {
    std::fprintf(stderr, "load: %s\n", probe.status().ToString().c_str());
    return 1;
  }
  Result<service::ServiceInfo> info = (*probe)->Info();
  if (!info.ok()) {
    std::fprintf(stderr, "load: INFO probe: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  probe->reset();  // don't hold an idle connection for the whole run

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  auto pool = MakePool(flags);
  service::LoadGenOptions lopts;
  lopts.n = info->n;
  lopts.num_clients = static_cast<size_t>(flags.GetInt("clients", 64));
  lopts.queries_per_client = static_cast<size_t>(flags.GetInt("queries", 10));
  lopts.batch_size = std::min(static_cast<size_t>(flags.GetInt("batch", 8)),
                              info->max_batch);
  lopts.query_seed = seed;
  lopts.pool = pool.get();
  metrics::Timer& load_timer = metrics::GetTimer("loadgen.run");
  Result<service::Transcript> transcript = [&] {
    metrics::ScopedSpan t(load_timer);
    return service::RunLoad(
        lopts, [port](uint64_t) -> std::unique_ptr<service::QueryTransport> {
          Result<std::unique_ptr<service::SocketTransport>> conn =
              service::SocketTransport::Connect(port);
          if (!conn.ok()) return nullptr;
          return std::move(conn).value();
        });
  }();
  RecordPoolGauges(pool.get());
  if (!transcript.ok()) {
    std::fprintf(stderr, "load: %s\n", transcript.status().ToString().c_str());
    return 1;
  }

  const std::string transcript_path = flags.GetString("transcript", "");
  if (!transcript_path.empty()) {
    Status wrote = service::WriteTranscript(*transcript, transcript_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "load: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }

  double accuracy = -1.0;
  if (decoder != "none") {
    Result<recon::Reconstruction> rec = service::DecodeTranscript(
        *transcript, decoder == "lp" ? service::Decoder::kLp
                                     : service::Decoder::kLeastSquares);
    if (!rec.ok()) {
      std::fprintf(stderr, "load: decode: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    // The experiment harness may score: the attacker itself never sees
    // the secret, only the transcript it decoded above.
    Rng srng(seed);
    const std::vector<uint8_t> secret = recon::RandomBits(info->n, srng);
    accuracy = recon::FractionAgree(rec->estimate, secret);
  }

  std::printf(
      "load: n=%zu clients=%zu queries=%llu answered=%llu rejected=%llu "
      "decoder=%s accuracy=%s\n",
      lopts.n, lopts.num_clients,
      static_cast<unsigned long long>(transcript->entries.size()),
      static_cast<unsigned long long>(transcript->answered()),
      static_cast<unsigned long long>(transcript->rejected()),
      decoder.c_str(),
      accuracy < 0.0 ? "n/a" : StrFormat("%.4f", accuracy).c_str());

  // Assertion gates for CI: violations exit non-zero with a diagnosis.
  const double min_accuracy = flags.GetDouble("min-accuracy", -1.0);
  if (min_accuracy >= 0.0 && accuracy < min_accuracy) {
    std::fprintf(stderr, "load: accuracy %.4f below --min-accuracy %.4f\n",
                 accuracy, min_accuracy);
    return 1;
  }
  const double max_accuracy = flags.GetDouble("max-accuracy", 2.0);
  if (accuracy > max_accuracy) {
    std::fprintf(stderr,
                 "load: accuracy %.4f above --max-accuracy %.4f (DP "
                 "degradation did not materialize)\n",
                 accuracy, max_accuracy);
    return 1;
  }
  if (flags.GetBool("expect-rejections", false) &&
      transcript->rejected() == 0) {
    std::fprintf(stderr,
                 "load: --expect-rejections but no query was refused\n");
    return 1;
  }
  return 0;
}

int Dispatch(const std::string& command, const Flags& flags) {
  if (command == "game") return RunGame(flags);
  if (command == "census") return RunCensus(flags);
  if (command == "linkage") return RunLinkage(flags);
  if (command == "recon") return RunRecon(flags);
  if (command == "audit") return RunAudit(flags);
  if (command == "membership") return RunMembership(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "load") return RunLoadCmd(flags);
  return Usage();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];

  std::vector<FlagSpec> specs = CommandFlags(command);
  if (specs.empty()) {
    std::fprintf(stderr, "psoctl: unknown command '%s'\n", command.c_str());
    return Usage();
  }
  std::vector<std::string> errors;
  if (!ValidateFlags(flags, specs, &errors)) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "psoctl %s: %s\n", command.c_str(), e.c_str());
    }
    return Usage();
  }

  const std::string level_name = flags.GetString("log-level", "");
  if (!level_name.empty()) {
    log::Level level;
    if (!log::ParseLevel(level_name, &level)) {
      std::fprintf(stderr,
                   "psoctl: invalid --log-level '%s' "
                   "(use debug|info|warn|error)\n",
                   level_name.c_str());
      return Usage();
    }
    log::SetMinLevel(level);
  }
  const std::string lp_backend = flags.GetString("lp-backend", "");
  if (!lp_backend.empty()) {
    Status set = SetDefaultLpBackend(lp_backend);
    if (!set.ok()) {
      std::fprintf(stderr, "psoctl: %s\n", set.ToString().c_str());
      return Usage();
    }
  }
  const std::string sat_backend = flags.GetString("sat-backend", "");
  if (!sat_backend.empty()) {
    Status set = SetDefaultSatBackend(sat_backend);
    if (!set.ok()) {
      std::fprintf(stderr, "psoctl: %s\n", set.ToString().c_str());
      return Usage();
    }
  }
  const std::string metrics_format = flags.GetString("metrics-format", "text");
  if (metrics_format != "text" && metrics_format != "json" &&
      metrics_format != "prom") {
    std::fprintf(stderr,
                 "psoctl: invalid --metrics-format '%s' "
                 "(use text|json|prom)\n",
                 metrics_format.c_str());
    return Usage();
  }
  const int64_t watchdog_ms = flags.GetInt("solver-watchdog-ms", 0);
  if (watchdog_ms > 0) {
    progress::Watchdog::Global().Start(watchdog_ms);
  }
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    trace::Collector::Global().Enable();
    // Remembered so an aborting PSO_CHECK still flushes a partial trace.
    trace::Collector::Global().SetFlushPath(trace_path);
  }

  int rc = Dispatch(command, flags);
  if (watchdog_ms > 0) progress::Watchdog::Global().Stop();
  if (flags.GetBool("metrics", false)) {
    const metrics::Snapshot snap = metrics::Registry::Global().TakeSnapshot();
    if (metrics_format == "json") {
      std::printf("%s\n", metrics::SnapshotToJson(snap).c_str());
    } else if (metrics_format == "prom") {
      std::printf("%s", metrics::ExpositionToProm(snap).c_str());
    } else {
      std::printf("\n-- metric registry --\n%s",
                  metrics::SnapshotToText(snap).c_str());
    }
  }
  if (!trace_path.empty()) {
    if (trace::Collector::Global().WriteChromeJson(trace_path)) {
      std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    }
    trace::Collector::Global().Disable();
  }
  return rc;
}

}  // namespace
}  // namespace pso::tools

int main(int argc, char** argv) { return pso::tools::Main(argc, argv); }
