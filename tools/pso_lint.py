#!/usr/bin/env python3
"""pso_lint: token-level C++ lint rules for the pso tree.

The repo's two core invariants — bit-deterministic experiments and a
checkable locking discipline — are enforced statically here, before any
test runs. The linter strips comments/strings, then applies per-path
rules:

  rand                  Nondeterministic randomness sources (rand(),
                        std::random_device, drand48, ...). Use pso::Rng
                        with an explicit seed; streams derive from
                        (seed, index) so results replay exactly.
  wall-clock            Wall-clock reads (time(), system_clock,
                        gettimeofday, ...) in library code: calendar time
                        leaks run-dependent values into output. Monotonic
                        clocks (steady_clock, high_resolution_clock) are
                        confined to the timing facade —
                        src/common/{metrics,trace,progress,parallel} —
                        so all latency measurement flows through
                        metrics::Timer / histograms / trace spans;
                        elsewhere they need an explicit
                        `// pso-lint: allow(wall-clock)`.
  unordered-iteration   Range-for over a std::unordered_{map,set}
                        variable. Hash-iteration order is not a pure
                        function of the data, so anything built from it
                        (group lists, float sums) varies across
                        platforms. Iterate a sorted copy instead.
  bare-mutex            std::mutex / std::thread / std::condition_variable
                        and friends outside src/common/. Use pso::Mutex,
                        pso::MutexLock, pso::CondVar, pso::ThreadPool —
                        the annotated wrappers clang -Wthread-safety can
                        check (see STATIC_ANALYSIS.md).
  assert                assert() instead of PSO_CHECK / PSO_CHECK_MSG.
                        NDEBUG builds silently drop assert; PSO_CHECK is
                        always on and flushes logs/traces before abort.
  nodiscard-status      Header declaration returning Status or Result<T>
                        by value without [[nodiscard]].
  mutex-rank            pso::Mutex declaration in src/ that does not name
                        a LockRank (common/lock_rank.h). Every long-lived
                        mutex must state its place in the global
                        acquisition order so the static/runtime deadlock
                        checks can see it.
  blocking-under-lock   Wait/WaitFor/Submit/recv/accept token inside a
                        MutexLock scope outside src/common/. Blocking (or
                        queueing onto a pool) while holding a lock is how
                        lock-order cycles start; shrink the critical
                        section instead.
  sleep                 sleep_for/usleep-style polling in src/ outside
                        src/common/. Sleep loops hide latency and races;
                        wait on a pso::CondVar (WaitFor for periodic
                        work) so shutdown can interrupt the wait.

Suppress a finding by appending a comment on the offending line:

    std::mutex raw_mu;  // pso-lint: allow(bare-mutex)

Multiple rules: `pso-lint: allow(rand, wall-clock)`.

Usage:
  tools/pso_lint.py                      # lint the default tree roots
  tools/pso_lint.py src/solver bench     # lint specific dirs/files
  tools/pso_lint.py --self-test          # run the fixture suite
  tools/pso_lint.py --list-rules

Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
DEFAULT_ROOTS = ["src", "tools", "bench", "fuzz", "tests"]
CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp", ".cxx")
SKIP_DIR_NAMES = {"lint_fixtures", "negcompile", "corpus"}

SUPPRESS_RE = re.compile(r"pso-lint:\s*allow\(([a-z0-9_\-, ]+)\)")
EXPECT_RE = re.compile(r"lint-expect:\s*([a-z0-9_\-]+)")
FIXTURE_PATH_RE = re.compile(r"pso-lint-fixture-path:\s*(\S+)")


def strip_comments_and_strings(text):
    """Replaces comment/string/char-literal contents with spaces.

    Newlines are preserved so line numbers survive. Token-level: raw
    strings are handled, trigraphs and line-continued comments are not.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' and text[i - 1] == "R" and i + 1 < n and i >= 1:
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i - 1 : i + 20])
            if not m:
                out.append(c)
                i += 1
                continue
            delim = m.group(1)
            end_marker = ")" + delim + '"'
            end = text.find(end_marker, i)
            if end == -1:
                end = n
            seg = text[i : end + len(end_marker)]
            out.append("".join("\n" if ch == "\n" else " " for ch in seg))
            i = end + len(end_marker)
        elif c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _under(relpath, *prefixes):
    p = relpath.replace(os.sep, "/")
    return any(p == pre or p.startswith(pre + "/") for pre in prefixes)


# ---------------------------------------------------------------------------
# Rule scopes: which repo-relative paths each rule applies to.
# ---------------------------------------------------------------------------

def scope_rand(rel):
    return _under(rel, "src", "tools", "bench", "fuzz", "tests")


def scope_wall_clock(rel):
    # bench/ reports wall clock by design; tests may time themselves.
    return _under(rel, "src", "tools")


def scope_unordered_iteration(rel):
    return _under(rel, "src", "tools")


def scope_bare_mutex(rel):
    # src/common/ implements the wrappers; tests hammer them with raw
    # std::thread on purpose.
    return (_under(rel, "src", "tools", "bench", "fuzz")
            and not _under(rel, "src/common"))


def scope_assert(rel):
    return _under(rel, "src", "tools", "bench", "fuzz", "tests")


def scope_nodiscard_status(rel):
    return rel.endswith((".h", ".hpp")) and _under(rel, "src", "tools")


def scope_mutex_rank(rel):
    return _under(rel, "src")


def scope_blocking_under_lock(rel):
    # src/common/ implements the primitives (CondVar waits legitimately
    # run under the lock they release).
    return _under(rel, "src") and not _under(rel, "src/common")


def scope_sleep(rel):
    return _under(rel, "src") and not _under(rel, "src/common")


# ---------------------------------------------------------------------------
# Rule checkers: (stripped_lines, stripped_text, rel_path)
#     -> [(line_no, message)].
# ---------------------------------------------------------------------------

RAND_RE = re.compile(
    r"(?<![\w.])((?:\w+\s*::\s*)+)?"
    r"(rand|srand|rand_r|drand48|lrand48|mrand48|random)\s*\("
    r"|\brandom_device\b"
)


def check_rand(lines, _text, _rel):
    out = []
    for no, line in enumerate(lines, 1):
        for m in RAND_RE.finditer(line):
            if m.group(2):
                qualifier = (m.group(1) or "").replace(" ", "")
                if qualifier not in ("", "std::"):
                    continue  # some other namespace's rand() lookalike
                what = m.group(2)
            else:
                what = "std::random_device"
            out.append((no, f"nondeterministic randomness source `{what}`; "
                            "use pso::Rng with an explicit seed"))
            break
    return out


WALL_CLOCK_RE = re.compile(
    r"(?<![\w.])((?:\w+\s*::\s*)+)?"
    r"(time|clock|gettimeofday|clock_gettime|localtime|gmtime|"
    r"strftime|ctime|mktime)\s*\("
    r"|\bsystem_clock\b"
)
MONOTONIC_CLOCK_RE = re.compile(
    r"\bsteady_clock\b|\bhigh_resolution_clock\b"
)
# The timing facade: the only files that may read monotonic clocks
# directly. Everything else routes timing through metrics::Timer /
# metrics::Histogram / trace spans so latency has one recording path.
MONOTONIC_CLOCK_FACADE = (
    "src/common/metrics",
    "src/common/trace",
    "src/common/progress",
    "src/common/parallel",
)


def _in_monotonic_facade(rel):
    p = rel.replace(os.sep, "/")
    return any(p.startswith(pre + ".") or p.startswith(pre + "/")
               for pre in MONOTONIC_CLOCK_FACADE)


def check_wall_clock(lines, _text, rel):
    out = []
    facade = _in_monotonic_facade(rel)
    for no, line in enumerate(lines, 1):
        reported = False
        for m in WALL_CLOCK_RE.finditer(line):
            if m.group(2):
                qualifier = (m.group(1) or "").replace(" ", "")
                if qualifier not in ("", "std::", "std::chrono::"):
                    continue
                what = m.group(2)
            else:
                what = m.group(0).strip()
            out.append((no, f"wall-clock source `{what}` in library code; "
                            "results must not depend on calendar time"))
            reported = True
            break
        if reported or facade:
            continue
        m = MONOTONIC_CLOCK_RE.search(line)
        if m:
            out.append((no, f"monotonic clock `{m.group(0)}` outside the "
                            "timing facade (src/common/{metrics,trace,"
                            "progress,parallel}); route timing through "
                            "metrics::Timer / metrics::Histogram / trace "
                            "spans"))
    return out


UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*(?:this->)?(\w+)\s*\)")


def check_unordered_iteration(lines, text, _rel):
    names = set(UNORDERED_DECL_RE.findall(text))
    if not names:
        return []
    out = []
    for no, line in enumerate(lines, 1):
        for m in RANGE_FOR_RE.finditer(line):
            if m.group(1) in names:
                out.append((no, f"iteration over unordered container "
                                f"`{m.group(1)}`: hash order is not "
                                "deterministic across platforms; iterate a "
                                "sorted copy"))
    return out


BARE_MUTEX_RE = re.compile(
    r"std\s*::\s*(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"thread|jthread)\b"
)


def check_bare_mutex(lines, _text, _rel):
    out = []
    for no, line in enumerate(lines, 1):
        m = BARE_MUTEX_RE.search(line)
        if m:
            out.append((no, f"bare std::{m.group(1)} outside src/common/; "
                            "use pso::Mutex / pso::MutexLock / pso::CondVar "
                            "/ pso::ThreadPool so clang -Wthread-safety can "
                            "check the locking"))
    return out


ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def check_assert(lines, _text, _rel):
    out = []
    for no, line in enumerate(lines, 1):
        if ASSERT_RE.search(line):
            out.append((no, "assert() is compiled out under NDEBUG; use "
                            "PSO_CHECK / PSO_CHECK_MSG"))
    return out


NODISCARD_DECL_RE = re.compile(
    r"(?<![\w:])((?:pso\s*::\s*)?(?:Status|Result\s*<[^;(){}]*>))\s+(\w+)\s*\("
)
# Tokens that terminate the backward search for [[nodiscard]].
DECL_BOUNDARY_RE = re.compile(r"[;{}]|\bpublic\s*:|\bprivate\s*:|\bprotected\s*:")


def check_nodiscard_status(lines, text, _rel):
    out = []
    for m in NODISCARD_DECL_RE.finditer(text):
        name = m.group(2)
        if name in ("operator", "return"):
            continue
        # Words immediately before the return type within this declaration.
        start = 0
        for b in DECL_BOUNDARY_RE.finditer(text, 0, m.start()):
            start = b.end()
        prefix = text[start : m.start()]
        if "return" in prefix.split():
            continue  # `return Status::...` style expression, not a decl
        if "[[nodiscard]]" in prefix:
            continue
        line_no = text.count("\n", 0, m.start()) + 1
        out.append((line_no, f"`{name}` returns {m.group(1).strip()} by value "
                             "but is not [[nodiscard]]; a dropped status "
                             "hides the failure it reports"))
    return out


MUTEX_DECL_RE = re.compile(r"(?<![\w:])((?:\w+\s*::\s*)*)Mutex\s+(\w+)")


def check_mutex_rank(lines, text, _rel):
    out = []
    for m in MUTEX_DECL_RE.finditer(text):
        qualifier = (m.group(1) or "").replace(" ", "")
        if qualifier not in ("", "pso::"):
            continue  # some other namespace's Mutex
        name = m.group(2)
        line_no = text.count("\n", 0, m.start()) + 1
        end = text.find(";", m.start())
        decl = text[m.start():end] if end != -1 else text[m.start():]
        if "LockRank::kUnranked" in decl:
            out.append((line_no, f"mutex `{name}` is declared kUnranked; "
                                 "long-lived mutexes in src/ must name a "
                                 "real rank (common/lock_rank.h)"))
        elif "LockRank::" not in decl:
            out.append((line_no, f"mutex `{name}` does not name a LockRank; "
                                 "construct it with {LockRank::k..., \"...\"} "
                                 "and attach PSO_LOCK_ORDER so the deadlock "
                                 "checks can order it (common/lock_rank.h)"))
    return out


MUTEXLOCK_STMT_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]")
BLOCKING_CALL_RE = re.compile(r"\b(WaitFor|Wait|Submit|recv|accept)\s*\(")


def check_blocking_under_lock(lines, text, _rel):
    out = []
    seen = set()
    for m in MUTEXLOCK_STMT_RE.finditer(text):
        stmt_end = text.find(";", m.end())
        if stmt_end == -1:
            continue
        # The lock is held from the end of the MutexLock statement to the
        # close of the enclosing block.
        depth = 0
        pos = stmt_end
        while pos < len(text):
            c = text[pos]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth < 0:
                    break
            pos += 1
        region = text[stmt_end:pos]
        for call in BLOCKING_CALL_RE.finditer(region):
            line_no = text.count("\n", 0, stmt_end + call.start()) + 1
            if line_no in seen:
                continue  # nested MutexLock scopes report once
            seen.add(line_no)
            out.append((line_no, f"`{call.group(1)}` called inside a "
                                 "MutexLock scope; blocking or queueing "
                                 "while holding a lock invites lock-order "
                                 "cycles — shrink the critical section"))
    return out


SLEEP_RE = re.compile(
    r"\b(sleep_for|sleep_until|usleep|nanosleep)\b"
    r"|(?<![\w.])sleep\s*\("
)


def check_sleep(lines, _text, _rel):
    out = []
    for no, line in enumerate(lines, 1):
        m = SLEEP_RE.search(line)
        if m:
            what = m.group(1) or "sleep"
            out.append((no, f"`{what}` polling in library code; wait on a "
                            "pso::CondVar (WaitFor for periodic work) so "
                            "notify/shutdown can interrupt the wait"))
    return out


RULES = [
    ("rand", scope_rand, check_rand),
    ("wall-clock", scope_wall_clock, check_wall_clock),
    ("unordered-iteration", scope_unordered_iteration,
     check_unordered_iteration),
    ("bare-mutex", scope_bare_mutex, check_bare_mutex),
    ("assert", scope_assert, check_assert),
    ("nodiscard-status", scope_nodiscard_status, check_nodiscard_status),
    ("mutex-rank", scope_mutex_rank, check_mutex_rank),
    ("blocking-under-lock", scope_blocking_under_lock,
     check_blocking_under_lock),
    ("sleep", scope_sleep, check_sleep),
]
RULE_NAMES = {name for name, _, _ in RULES}


def suppressions_by_line(raw_text):
    """Maps line number -> set of rule names allowed on that line."""
    supp = {}
    for no, line in enumerate(raw_text.splitlines(), 1):
        m = SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            supp[no] = rules
    return supp


def lint_text(rel_path, raw_text):
    """Lints one file's content as if it lived at repo-relative rel_path."""
    stripped = strip_comments_and_strings(raw_text)
    lines = stripped.splitlines()
    supp = suppressions_by_line(raw_text)
    findings = []
    for rule, in_scope, checker in RULES:
        if not in_scope(rel_path):
            continue
        for line_no, message in checker(lines, stripped, rel_path):
            allowed = supp.get(line_no, set())
            if rule in allowed or "all" in allowed:
                continue
            findings.append(Finding(rel_path, line_no, rule, message))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_cxx_files(paths):
    for p in paths:
        ap = os.path.abspath(p)
        if os.path.isfile(ap):
            yield ap
            continue
        if not os.path.isdir(ap):
            print(f"pso_lint: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIR_NAMES and not d.startswith(("build", "."))
            )
            for f in sorted(filenames):
                if f.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, f)


def lint_paths(paths):
    findings = []
    checked = 0
    for abspath in iter_cxx_files(paths):
        rel = os.path.relpath(abspath, REPO_ROOT).replace(os.sep, "/")
        if rel.startswith(".."):
            rel = abspath.replace(os.sep, "/")  # outside the repo: lint as-is
        with open(abspath, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
        findings.extend(lint_text(rel, raw))
        checked += 1
    return findings, checked


def run_self_test(fixtures_dir):
    """Each fixture declares its pretend path and expected findings inline:

        // pso-lint-fixture-path: src/foo/bar.cc
        ...
        std::mutex mu;               // lint-expect: bare-mutex

    The suite fails on any missed or spurious finding.
    """
    if not os.path.isdir(fixtures_dir):
        print(f"pso_lint --self-test: fixtures dir not found: {fixtures_dir}",
              file=sys.stderr)
        return 2
    names = sorted(f for f in os.listdir(fixtures_dir)
                   if f.endswith(CXX_EXTENSIONS))
    if not names:
        print(f"pso_lint --self-test: no fixtures in {fixtures_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        path = os.path.join(fixtures_dir, name)
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
        m = FIXTURE_PATH_RE.search(raw)
        if not m:
            print(f"FAIL {name}: missing `pso-lint-fixture-path:` directive")
            failures += 1
            continue
        pretend = m.group(1)
        expected = set()
        for no, line in enumerate(raw.splitlines(), 1):
            for em in EXPECT_RE.finditer(line):
                if em.group(1) not in RULE_NAMES:
                    print(f"FAIL {name}:{no}: unknown rule in lint-expect: "
                          f"{em.group(1)}")
                    failures += 1
                expected.add((no, em.group(1)))
        actual = {(f.line, f.rule) for f in lint_text(pretend, raw)}
        missed = expected - actual
        spurious = actual - expected
        if missed or spurious:
            failures += 1
            print(f"FAIL {name} (as {pretend}):")
            for line, rule in sorted(missed):
                print(f"     expected but not reported: line {line} [{rule}]")
            for line, rule in sorted(spurious):
                print(f"     reported but not expected: line {line} [{rule}]")
        else:
            n = len(expected)
            print(f"OK   {name}: {n} expected finding(s), none spurious")
    print(f"\n{len(names) - failures}/{len(names)} fixtures pass")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help=f"files/dirs to lint (default: {' '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite in tests/lint_fixtures")
    parser.add_argument("--fixtures-dir",
                        default=os.path.join(REPO_ROOT, "tests", "lint_fixtures"),
                        help="fixtures directory for --self-test")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for name, _, _ in RULES:
            print(name)
        return 0

    if args.self_test:
        return run_self_test(args.fixtures_dir)

    paths = args.paths or [os.path.join(REPO_ROOT, r) for r in DEFAULT_ROOTS]
    findings, checked = lint_paths(paths)
    for f in findings:
        print(f)
    if findings:
        print(f"\npso_lint: {len(findings)} finding(s) in {checked} file(s); "
              "suppress intentional ones with `// pso-lint: allow(<rule>)`",
              file=sys.stderr)
        return 1
    print(f"pso_lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
