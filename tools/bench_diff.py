#!/usr/bin/env python3
"""Regression gate over the deterministic bench counters.

Every bench harness writes a BENCH_<name>.json report (schema_version 3,
see EXPERIMENTS.md). The "metrics"/"counters" object is the deterministic
section: same seed => identical values on every run and every machine, so
it can be diffed exactly. This tool compares fresh reports against the
committed baselines in bench/baselines/ and fails on any counter drift —
an unexplained change in solver pivots, SAT decisions, or samples drawn
is a behavior change, not noise.

Counters under run-shaped prefixes (parallel.*, pool.*, watchdog.* by
default) and everything run-dependent (wall clock, timers, gauges, RSS,
git_sha) are reported but never gate. Wall-clock deltas are printed for
information only.

Histograms (schema_version 3) gate only on their event counts: the
number of lp.solve / sat.solve / bench.main_loop events is deterministic
given the seed, while the latency values inside the buckets — and hence
the quantiles (p50..p999), sum, mean, min, max, the bucket distribution,
and the derived "throughput" section — are wall-clock artifacts and are
never compared.

Usage:
  # gate (CI): compare build/bench/BENCH_*.json against bench/baselines/
  tools/bench_diff.py --current-dir build/bench

  # refresh baselines after an intentional behavior change:
  tools/bench_diff.py --current-dir build/bench --update
  git add bench/baselines/

Baselines store only the stable fields (bench, experiment, filtered
counters), so their git diffs show exactly the deterministic change and
nothing else.

`--self-test` proves the gate's exit-code contract end to end against
synthetic reports in a temp directory (registered as the ctest
`bench_diff_selftest` under the lint label).
"""

import argparse
import json
import os
import sys
import tempfile

DEFAULT_SKIP_PREFIXES = ["parallel.", "pool.", "watchdog."]
SCHEMA_VERSION = 3

EXIT_CODES_HELP = """\
exit codes:
  0  every bench clean: counters and histogram event counts match the
     committed baselines (or --update / --self-test succeeded)
  1  regression: counter drift, histogram event-count drift, or failed
     shape checks in a report
  2  usage error: no BENCH_*.json reports found in --current-dir
  3  baseline missing: a report has no committed baseline — a setup
     problem for a NEW bench, not a regression; run with --update and
     commit bench/baselines/
"""


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    return report


def filtered_counters(report, skip_prefixes):
    counters = report.get("metrics", {}).get("counters", {})
    return {
        name: value
        for name, value in counters.items()
        if not any(name.startswith(p) for p in skip_prefixes)
    }


def histogram_counts(report, skip_prefixes):
    """Per-histogram event counts — the only gateable histogram field."""
    histograms = report.get("metrics", {}).get("histograms", {})
    return {
        name: value.get("count", 0)
        for name, value in histograms.items()
        if not any(name.startswith(p) for p in skip_prefixes)
    }


def baseline_document(report, skip_prefixes):
    """The stable subset of a report that gets committed as the baseline."""
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": report.get("bench", ""),
        "experiment": report.get("experiment", ""),
        "counters": filtered_counters(report, skip_prefixes),
        "histogram_counts": histogram_counts(report, skip_prefixes),
    }


def diff_counters(baseline, current, notes, allow_new=False):
    """Returns a list of human-readable drift lines (empty = clean).

    With allow_new, counters present only in the current report go to
    `notes` (printed informationally) instead of gating — the intended
    mode while a change that introduces new instrumentation (e.g. a new
    solver backend's counters) is in flight before its baseline refresh
    lands.
    """
    lines = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            lines.append(f"counter removed: {name} (baseline {baseline[name]})")
        elif name not in baseline:
            if allow_new:
                notes.append(f"new counter (allowed): {name} = {current[name]}")
            else:
                lines.append(f"counter added: {name} = {current[name]}")
        elif baseline[name] != current[name]:
            lines.append(
                f"counter changed: {name}: {baseline[name]} -> {current[name]}"
            )
    return lines


def _synthetic_report(counters, histogram_counts_by_name):
    """A minimal schema-3 report with the given deterministic section."""
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "bench_selftest",
        "experiment": "SELFTEST",
        "wall_clock_seconds": 0.01,
        "checks_failed": 0,
        "metrics": {
            "counters": counters,
            "histograms": {
                name: {"count": count}
                for name, count in histogram_counts_by_name.items()
            },
        },
    }


def self_test():
    """Drives main() through every documented exit code on synthetic data."""
    failures = []

    def expect(want, argv, scenario):
        got = main(argv)
        ok = got == want
        print(f"[{'PASS' if ok else 'FAIL'}] {scenario}: exit {got} "
              f"(want {want})")
        if not ok:
            failures.append(scenario)

    def write_report(directory, counters, hists):
        path = os.path.join(directory, "BENCH_bench_selftest.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(_synthetic_report(counters, hists), f)

    with tempfile.TemporaryDirectory() as tmp:
        current = os.path.join(tmp, "current")
        baselines = os.path.join(tmp, "baselines")
        os.makedirs(current)
        write_report(current, {"svc.queries": 640}, {"svc.answer": 640})

        common = ["--current-dir", current, "--baseline-dir", baselines]
        expect(3, common, "missing baseline")
        expect(0, common + ["--update"], "baseline refresh")
        expect(0, common, "matching baseline")

        write_report(current, {"svc.queries": 641}, {"svc.answer": 640})
        expect(1, common, "counter drift")
        write_report(current, {"svc.queries": 640}, {"svc.answer": 639})
        expect(1, common, "histogram event-count drift")

        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        expect(2, ["--current-dir", empty, "--baseline-dir", baselines],
               "no reports")

    print(f"\nself-test: {6 - len(failures)}/6 scenarios passed")
    return 0 if not failures else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--current-dir",
        default="build/bench",
        help="directory holding the fresh BENCH_*.json reports",
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), "..", "bench", "baselines"),
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--skip-prefix",
        action="append",
        default=None,
        metavar="PREFIX",
        help="counter prefixes to exclude from the gate "
        f"(default: {' '.join(DEFAULT_SKIP_PREFIXES)})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from the current reports instead of gating",
    )
    parser.add_argument(
        "--allow-new-counters",
        action="store_true",
        help="report counters and histogram event counts absent from the "
        "baseline without failing (for changes that add instrumentation — "
        "a new solver backend's counters, a newly wired latency histogram "
        "— before the baseline refresh lands)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the exit-code contract (0/1/2/3) against synthetic "
        "reports in a temp directory, then exit 0 iff every scenario "
        "produced its documented code",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()

    skip_prefixes = (
        args.skip_prefix if args.skip_prefix is not None else DEFAULT_SKIP_PREFIXES
    )
    baseline_dir = os.path.normpath(args.baseline_dir)

    report_names = sorted(
        f
        for f in os.listdir(args.current_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not report_names:
        print(f"error: no BENCH_*.json reports in {args.current_dir}", file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(baseline_dir, exist_ok=True)
        for name in report_names:
            report = load_report(os.path.join(args.current_dir, name))
            out_path = os.path.join(baseline_dir, name)
            with open(out_path, "w", encoding="utf-8") as f:
                json.dump(baseline_document(report, skip_prefixes), f, indent=2)
                f.write("\n")
            print(f"baseline updated: {out_path}")
        return 0

    failures = 0
    missing = 0
    for name in report_names:
        report = load_report(os.path.join(args.current_dir, name))
        bench = report.get("bench", name)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(baseline_path):
            # Distinct from FAIL: a missing baseline is a setup problem
            # (new bench, baseline never committed), not counter drift.
            print(f"MISSING {bench}: no baseline at {baseline_path}")
            print("     run tools/bench_diff.py --update and commit the result")
            missing += 1
            continue
        baseline = load_report(baseline_path)

        notes = []
        problems = diff_counters(
            baseline.get("counters", {}),
            filtered_counters(report, skip_prefixes),
            notes,
            allow_new=args.allow_new_counters,
        )
        problems += [
            f"histogram {line}"
            for line in diff_counters(
                baseline.get("histogram_counts", {}),
                histogram_counts(report, skip_prefixes),
                notes,
                allow_new=args.allow_new_counters,
            )
        ]
        if report.get("checks_failed", 0):
            problems.append(f"{report['checks_failed']} shape check(s) failed")
        if baseline.get("experiment") != report.get("experiment"):
            problems.append(
                f"experiment renamed: {baseline.get('experiment')!r} -> "
                f"{report.get('experiment')!r} (refresh the baseline)"
            )

        wall = report.get("wall_clock_seconds", 0.0)
        if problems:
            print(f"FAIL {bench} (wall {wall:.2f}s, informational):")
            for p in problems:
                print(f"     {p}")
            failures += 1
        else:
            n = len(filtered_counters(report, skip_prefixes))
            h = len(histogram_counts(report, skip_prefixes))
            print(
                f"OK   {bench}: {n} counters + {h} histogram counts match "
                f"(wall {wall:.2f}s)"
            )
        for note in notes:
            print(f"     {note}")

    skipped = ", ".join(skip_prefixes) or "none"
    clean = len(report_names) - failures - missing
    print(
        f"\n{clean}/{len(report_names)} benches clean "
        f"(skipped prefixes: {skipped}; wall clock never gates)"
    )
    if missing:
        print(
            f"{missing} baseline(s) MISSING — not a counter regression; "
            "run tools/bench_diff.py --update and commit bench/baselines/"
        )
        return 3
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
