// QS — the end-to-end service loop: a live statistical-query service
// under reconstruction load (Cohen–Nissim, "Linear Program
// Reconstruction in Practice"). A QueryService answers counting queries
// for 24 simulated clients; the recorded transcript feeds the LP decoder
// AS A CLIENT. Two legs:
//
//   exact — unmetered exact answers: the transcript reconstructs the
//           secret perfectly (the blatant non-privacy baseline);
//   dp    — Laplace(1/0.25) per answer with a per-client budget of 2.0:
//           each client gets exactly 8 answers then 2 refusals, and the
//           reconstruction measurably degrades.
//
// Deterministic section (gated by tools/bench_diff.py): every counter
// (service.queries, service.budget_rejections, loadgen.*) and histogram
// event count. The service.answer histogram carries the per-query
// latency distribution (p50/p99/p999) and the throughput section derives
// queries/sec from it — run-dependent, reported but never gated.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/table.h"
#include "recon/attacks.h"
#include "recon/oracle.h"
#include "service/loadgen.h"
#include "service/query_service.h"

namespace pso {
namespace {

// 24 clients x 10 queries = 240 recorded queries = 5n at n = 48 — the
// same m/n ratio E2 (bench_recon_lp) pins for exact LP decoding; much
// past that the decode LP (one residual column + two rows per query)
// outgrows the simplex iteration budget.
constexpr size_t kN = 48;
constexpr size_t kClients = 24;
constexpr size_t kQueriesPerClient = 10;
constexpr uint64_t kSeed = 1217;

struct LegResult {
  service::Transcript transcript;
  double accuracy = 0.0;
};

// One load round + transcript decode against a fresh service.
LegResult RunLeg(const service::QueryServiceOptions& svc_opts,
                 const std::vector<uint8_t>& secret, uint64_t query_seed,
                 ThreadPool* pool) {
  service::QueryService svc(secret, svc_opts);
  service::LoadGenOptions lopts;
  lopts.n = kN;
  lopts.num_clients = kClients;
  lopts.queries_per_client = kQueriesPerClient;
  lopts.batch_size = 8;
  lopts.query_seed = query_seed;
  lopts.pool = pool;
  Result<service::Transcript> transcript = service::RunLoad(
      lopts, [&svc](uint64_t) -> std::unique_ptr<service::QueryTransport> {
        return std::make_unique<service::InProcessTransport>(&svc);
      });
  PSO_CHECK_MSG(transcript.ok(), transcript.status().ToString().c_str());
  LegResult leg;
  leg.transcript = std::move(transcript).value();
  Result<recon::Reconstruction> rec =
      service::DecodeTranscript(leg.transcript, service::Decoder::kLp);
  PSO_CHECK_MSG(rec.ok(), rec.status().ToString().c_str());
  leg.accuracy = recon::FractionAgree(rec->estimate, secret);
  return leg;
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_query_service", argc, argv);
  bench::Banner(
      "QS: live query service under reconstruction load",
      "an interactive service answering counting queries is reconstructed "
      "by an external client from its released answers alone; per-query "
      "DP noise plus a per-client budget degrades the attack");

  bench::ParallelConfig par = bench::MakeParallelConfig(ctx.threads);
  Rng rng(kSeed);
  const std::vector<uint8_t> secret = recon::RandomBits(kN, rng);

  // Exact leg (the main-loop iteration the latency histogram tracks).
  service::QueryServiceOptions exact_opts;
  LegResult exact = bench::TimedIteration(
      [&] { return RunLeg(exact_opts, secret, kSeed + 1, par.get()); });

  // DP leg: eps 0.25 per answer, budget 2.0 => exactly 8 answers + 2
  // refusals per client, deterministic at any thread count.
  service::QueryServiceOptions dp_opts;
  dp_opts.eps_per_query = 0.25;
  dp_opts.client_budget_eps = 2.0;
  dp_opts.noise_seed = kSeed;
  LegResult dp = bench::TimedIteration(
      [&] { return RunLeg(dp_opts, secret, kSeed + 1, par.get()); });

  TextTable table({"leg", "clients", "queries", "answered", "rejected",
                   "accuracy"});
  const auto Row = [&](const char* name, const LegResult& leg) {
    table.AddRow({name, StrFormat("%zu", kClients),
                  StrFormat("%zu", leg.transcript.entries.size()),
                  StrFormat("%llu",
                            (unsigned long long)leg.transcript.answered()),
                  StrFormat("%llu",
                            (unsigned long long)leg.transcript.rejected()),
                  StrFormat("%.4f", leg.accuracy)});
  };
  Row("exact", exact);
  Row("dp eps=0.25 budget=2.0", dp);
  table.Print();

  // Per-query latency + throughput from the service.answer histogram
  // (run-dependent; the deterministic part is its event count).
  {
    const metrics::Snapshot snap = metrics::Registry::Global().TakeSnapshot();
    const auto it = snap.histograms.find("service.answer");
    if (it != snap.histograms.end()) {
      const auto& hv = it->second;
      const double wall = ctx.timer.Seconds();
      std::printf(
          "\nservice.answer: %llu events, p50=%.3gs p99=%.3gs p999=%.3gs, "
          "~%.0f queries/sec over the run\n",
          (unsigned long long)hv.count, hv.ValueAtQuantile(0.50),
          hv.ValueAtQuantile(0.99), hv.ValueAtQuantile(0.999),
          wall > 0.0 ? static_cast<double>(hv.count) / wall : 0.0);
    }
  }

  bench::ShapeChecks checks;
  checks.Check(exact.accuracy == 1.0,
               "exact service: transcript decodes to the secret exactly");
  checks.Check(exact.transcript.rejected() == 0,
               "exact service: unmetered, no refusals");
  checks.Check(dp.transcript.answered() == kClients * 8,
               "dp budget admits exactly 8 answers per client");
  checks.Check(dp.transcript.rejected() == kClients * 2,
               "dp budget refuses exactly 2 queries per client");
  checks.CheckBetween(dp.accuracy, 0.0, 0.98,
                      "dp serving degrades reconstruction");
  checks.CheckGreater(exact.accuracy, dp.accuracy,
                      "exact transcript beats the noisy one");
  return bench::FinishBench(ctx, "QS", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) {
  return pso::Run(argc, argv);
}
