// E10 — Sweeney's GIC re-identification (Section 1): ZIP x birth date x
// sex is unique for the vast majority; joining a "de-identified" medical
// release with a voter file re-attaches names. k-anonymizing the release
// stops this particular attack (which is exactly what it was designed
// for — and all it guarantees, per Theorem 2.10). Also the
// Narayanan–Shmatikov variant: a few known ratings identify a subscriber.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "kanon/datafly.h"
#include "linkage/join_attack.h"
#include "linkage/uniqueness.h"

namespace pso::linkage {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_sweeney_linkage", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E10: quasi-identifier uniqueness and the GIC linkage attack",
      "ZIP x birth date x sex uniquely identifies the vast majority; "
      "linkage with an identified public file re-identifies de-identified "
      "medical records");

  Universe u = MakeGicMedicalUniverse(200);
  Rng rng(0x6C1);
  IdentifiedPopulation pop = SamplePopulation(u, 30000, rng);

  // Part 1: uniqueness by quasi-identifier set.
  TextTable uniq_table({"quasi-identifier set", "unique", "groups"});
  struct QiSet {
    std::string name;
    std::vector<size_t> attrs;
  };
  std::vector<QiSet> qi_sets = {
      {"zip", {0}},
      {"zip+sex", {0, 3}},
      {"zip+birth_year+sex", {0, 1, 3}},
      {"zip+full_birth_date+sex", {0, 1, 2, 3}},
  };
  double full_unique = 0.0;
  double zip_unique = 0.0;
  for (const QiSet& qi : qi_sets) {
    UniquenessReport r = bench::TimedIteration(
        [&] { return AnalyzeUniqueness(pop.records, qi.attrs); });
    uniq_table.AddRow({qi.name,
                       StrFormat("%.1f%%", 100.0 * r.unique_fraction()),
                       StrFormat("%zu", r.groups)});
    if (qi.attrs.size() == 4) full_unique = r.unique_fraction();
    if (qi.attrs.size() == 1) zip_unique = r.unique_fraction();
  }
  uniq_table.Print();

  // Part 2: the join attack, raw vs k-anonymized release.
  std::vector<size_t> qi = {0, 1, 2, 3};
  auto voters = BuildVoterFile(pop, qi, /*coverage=*/0.75, rng);
  LinkageReport raw = JoinAttack(pop, voters, qi);

  kanon::HierarchySet hs = kanon::HierarchySet::Defaults(u.schema);
  kanon::DataflyOptions dopts;
  dopts.k = 5;
  dopts.qi_attrs = qi;
  dopts.max_suppression = 0.05;
  auto anon = kanon::DataflyAnonymize(pop.records, hs, dopts);
  LinkageReport gen;
  if (anon.ok()) {
    gen = JoinAttackGeneralized(pop, anon->generalized, voters, qi);
  }

  std::printf("\njoin attack (voter coverage 75%%):\n");
  TextTable join_table({"release", "claims", "confirmed", "claim rate",
                        "confirmed rate"});
  join_table.AddRow({"de-identified (raw QI kept)",
                     StrFormat("%zu", raw.claims),
                     StrFormat("%zu", raw.confirmed),
                     StrFormat("%.1f%%", 100.0 * raw.claim_rate()),
                     StrFormat("%.1f%%", 100.0 * raw.confirmed_rate())});
  join_table.AddRow({"5-anonymous (Datafly)", StrFormat("%zu", gen.claims),
                     StrFormat("%zu", gen.confirmed),
                     StrFormat("%.1f%%", 100.0 * gen.claim_rate()),
                     StrFormat("%.1f%%", 100.0 * gen.confirmed_rate())});
  join_table.Print();

  // Part 3: Narayanan–Shmatikov sparse-data variant.
  Universe ratings = MakeRatingsUniverse(64, 0.08);
  Rng rrng(0x4e5);
  Dataset subs = ratings.distribution.SampleDataset(8000, rrng);
  std::printf("\nNetflix-style: P[unique] given j known rated movies "
              "(8000 subscribers, 64 movies):\n");
  TextTable nflx({"known movies j", "P[target unique]"});
  double know8 = 0.0;
  for (size_t j : {1, 2, 4, 8}) {
    double p = PartialKnowledgeUniqueness(subs, j, 400, rrng);
    nflx.AddRow({StrFormat("%zu", j), StrFormat("%.3f", p)});
    if (j == 8) know8 = p;
  }
  nflx.Print();

  bench::ShapeChecks checks;
  checks.CheckBetween(full_unique, 0.85, 1.0,
                      "ZIP x birth date x sex unique for the vast majority "
                      "(Sweeney)");
  checks.CheckGreater(full_unique, zip_unique + 0.5,
                      "uniqueness explodes as QIs accumulate");
  checks.CheckGreater(raw.confirmed_rate(), 0.4,
                      "raw de-identified release is re-identified at scale");
  checks.CheckBetween(gen.claim_rate(), 0.0, 0.02,
                      "5-anonymity blocks the unique-join attack");
  checks.CheckGreater(know8, 0.6,
                      "a few known ratings identify a subscriber (N-S)");
  return bench::FinishBench(ctx, "E10", checks);
}

}  // namespace
}  // namespace pso::linkage

int main(int argc, char** argv) {
  return pso::linkage::Run(argc, argv);
}
