// E4 — Section 2.2's trivial attackers: a data-independent predicate of
// weight w isolates with probability n*w*(1-w)^{n-1}, peaking near 1/e at
// w = 1/n (the 365-birthdays example computes ~37%). Series: empirical
// isolation probability vs w against the closed form, plus the birthday
// example verbatim.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"
#include "predicate/predicate.h"

namespace pso {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_baseline_isolation", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E4: trivial (output-blind) attackers and the 37% baseline",
      "a weight-w predicate chosen independently of the data isolates "
      "w.p. n w (1-w)^{n-1}: negligible for negligible w, ~37% at w=1/n, "
      "negligible again for heavy w");

  // Part 1: the paper's birthday example, exactly as stated.
  Universe birthdays = MakeBirthdayUniverse();
  const size_t n = 365;
  Rng rng(2021);
  auto apr30 = MakeAttributeEquals(0, 119, "birthday");  // day 119 ~ Apr-30
  BernoulliEstimator birthday_iso;
  for (int t = 0; t < 4000; ++t) {
    bench::TimedIteration([&] {
      Dataset x = birthdays.distribution.SampleDataset(n, rng);
      birthday_iso.Add(Isolates(*apr30, x));
      return 0;
    });
  }
  std::printf(
      "Birthday example: fixed predicate 'birthday == Apr-30', n = 365\n"
      "  empirical isolation = %.4f   closed form = %.4f   paper: ~37%%\n\n",
      birthday_iso.rate(), BaselineIsolationProbability(n, 1.0 / 365.0));

  // Part 2: the full curve over w (hash predicates of designed weight).
  const size_t game_n = 500;
  TextTable table({"w * n", "design w", "empirical", "closed form"});
  double at_peak = 0.0;
  double at_tiny = 1.0;
  double at_heavy = 1.0;
  Universe gic = MakeGicMedicalUniverse(100);
  for (double wn : {0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    double w = wn / static_cast<double>(game_n);
    BernoulliEstimator iso;
    const int trials = 600;
    for (int t = 0; t < trials; ++t) {
      Dataset x = gic.distribution.SampleDataset(game_n, rng);
      UniversalHash h(rng, static_cast<uint64_t>(std::llround(1.0 / w)));
      auto p = MakeHashPredicate(gic.schema, h, 0);
      iso.Add(Isolates(*p, x));
    }
    double closed = BaselineIsolationProbability(game_n, w);
    table.AddRow({StrFormat("%.2f", wn), StrFormat("%.2e", w),
                  StrFormat("%.4f", iso.rate()), StrFormat("%.4f", closed)});
    if (wn == 1.0) at_peak = iso.rate();
    if (wn == 0.01) at_tiny = iso.rate();
    if (wn == 20.0) at_heavy = iso.rate();
  }
  table.Print();

  bench::ShapeChecks checks;
  checks.CheckBetween(birthday_iso.rate(), 0.34, 0.40,
                      "birthday example isolates ~37%");
  checks.CheckBetween(at_peak, 0.30, 0.44, "peak at w = 1/n is ~1/e");
  checks.CheckBetween(at_tiny, 0.0, 0.03,
                      "negligible weight => negligible isolation");
  checks.CheckBetween(at_heavy, 0.0, 0.03,
                      "heavy weight => negligible isolation");
  checks.CheckGreater(at_peak, 10.0 * at_tiny,
                      "peak dominates the tiny-weight regime");
  return bench::FinishBench(ctx, "E4", checks);
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) {
  return pso::Run(argc, argv);
}
