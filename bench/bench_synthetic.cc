// E16 — synthetic data under the PSO lens (Section 1.2 asks how concepts
// like linkability apply "when PII is replaced with 'synthetic data'").
// The formalization answers operationally: a bootstrap "synthetic" release
// (copying records) fails PSO outright; marginal-fitted synthesis resists
// the copy attack; DP-fitted synthesis inherits Theorem 2.9's guarantee.
// Series: PSO success of the copy adversary per generator, plus a utility
// column (total-variation distance of the sex marginal) showing the
// privacy/utility positions.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "pso/game.h"
#include "pso/synthetic.h"
#include "tools/flags.h"

namespace pso {
namespace {

// Mean absolute error of the released age histogram vs the input's, as a
// quick utility proxy.
double AgeHistogramError(const Dataset& input, const Dataset& synthetic) {
  const Attribute& age = input.schema().attribute(1);  // birth_year
  size_t domain = static_cast<size_t>(age.DomainSize());
  std::vector<double> a(domain, 0.0);
  std::vector<double> b(domain, 0.0);
  for (const Record& r : input.records()) {
    a[static_cast<size_t>(r[1] - age.MinValue())] += 1.0 / input.size();
  }
  for (const Record& r : synthetic.records()) {
    b[static_cast<size_t>(r[1] - age.MinValue())] += 1.0 / synthetic.size();
  }
  double tv = 0.0;
  for (size_t v = 0; v < domain; ++v) tv += std::fabs(a[v] - b[v]);
  return tv / 2.0;
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_synthetic", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E16: is synthetic data anonymous? (Section 1.2, PSO lens)",
      "bootstrap 'synthetic' data fails PSO like the identity mechanism; "
      "marginal and DP-marginal synthesis prevent the copy attack");

  Universe u = MakeGicMedicalUniverse(100);
  const size_t n = 300;
  PsoGameOptions opts;
  opts.trials = 100;
  opts.weight_pool = 60000;
  opts.pool = par.get();
  PsoGame game(u.distribution, n, opts);
  auto adversary = MakeSyntheticCopyAdversary();

  TextTable table({"generator", "PSO rate", "baseline", "advantage",
                   "utility: TV(birth_year hist)"});
  double bootstrap_rate = 0.0;
  double marginal_rate = 1.0;
  double dp_rate = 1.0;
  Rng urng(0xE16);
  Dataset sample = u.distribution.SampleDataset(n, urng);
  for (SyntheticMode mode :
       {SyntheticMode::kBootstrap, SyntheticMode::kMarginal,
        SyntheticMode::kDpMarginal}) {
    auto mech = MakeSyntheticDataMechanism(mode, 0, /*eps=*/1.0);
    auto result =
        bench::TimedIteration([&] { return game.Run(*mech, *adversary); });
    MechanismOutput sample_out = mech->Run(sample, urng);
    const Dataset* synth = sample_out.As<Dataset>();
    double tv = synth != nullptr ? AgeHistogramError(sample, *synth) : 1.0;
    table.AddRow({result.mechanism,
                  StrFormat("%.4f", result.pso_success.rate()),
                  StrFormat("%.4f", result.baseline),
                  StrFormat("%+.4f", result.advantage),
                  StrFormat("%.3f", tv)});
    switch (mode) {
      case SyntheticMode::kBootstrap:
        bootstrap_rate = result.pso_success.rate();
        break;
      case SyntheticMode::kMarginal:
        marginal_rate = result.pso_success.rate();
        break;
      case SyntheticMode::kDpMarginal:
        dp_rate = result.pso_success.rate();
        break;
    }
  }
  table.Print();
  std::printf(
      "\n'Synthetic' is not a privacy property: the same output format "
      "spans blatant failure and DP-grade protection depending on the "
      "generator. The PSO game distinguishes them where the label "
      "cannot.\n");

  // Wall-clock comparison on one representative configuration.
  {
    PsoGameOptions t_opts;
    t_opts.trials = 100;
    t_opts.weight_pool = 60000;
    auto t_mech =
        MakeSyntheticDataMechanism(SyntheticMode::kMarginal, 0, /*eps=*/1.0);
    bench::WallTimer timer;
    PsoGame serial_game(u.distribution, n, t_opts);
    serial_game.Run(*t_mech, *adversary);
    double serial_s = timer.Seconds();
    t_opts.pool = par.get();
    timer.Reset();
    PsoGame parallel_game(u.distribution, n, t_opts);
    parallel_game.Run(*t_mech, *adversary);
    bench::ReportSpeedup("marginal-synthesis game, 100 trials", serial_s,
                         timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(bootstrap_rate, 0.9, 1.0,
                      "bootstrap synthesis fails PSO outright");
  checks.CheckBetween(marginal_rate, 0.0, 0.1,
                      "marginal synthesis resists the copy attack");
  checks.CheckBetween(dp_rate, 0.0, 0.1,
                      "DP-marginal synthesis resists the copy attack");
  checks.CheckGreater(bootstrap_rate, marginal_rate + 0.8,
                      "generator choice separates failure from protection");
  return bench::FinishBench(ctx, "E16", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) { return pso::Run(argc, argv); }
