// E11 — Section 1.1 / Ganta et al. [23]: k-anonymity is not closed under
// composition. Two independently k-anonymized releases of the same data
// are each k-anonymous, yet intersecting a row's sensitive-value
// candidates across releases pins values a single release never would.
// Series: pinned / shrunk fractions vs k, against the single-release
// baseline. (Contrast: DP composes gracefully — the accountant quantifies
// the degradation instead of hiding it.)

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "dp/accountant.h"
#include "kanon/attacks.h"
#include "kanon/datafly.h"
#include "kanon/mondrian.h"

namespace pso::kanon {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_kanon_composition", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E11: k-anonymity is not closed under composition (Ganta et al.)",
      "two k-anonymous releases of the same data, intersected, disclose "
      "sensitive values that neither release discloses alone");

  Universe u = MakeGicMedicalUniverse(100);
  const size_t n = 600;
  const size_t diagnosis = 4;
  Rng rng(0x6A17A);
  Dataset data = u.distribution.SampleDataset(n, rng);
  HierarchySet hs = HierarchySet::Defaults(u.schema);
  std::vector<size_t> qi = {0, 1, 2, 3};

  TextTable table({"k", "pinned (A alone)", "pinned (A+B)",
                   "shrunk (A+B)", "both releases k-anonymous"});
  double pinned_two_k3 = 0.0;
  double pinned_one_k3 = 0.0;
  double shrunk_k3 = 0.0;
  for (size_t k : {3, 5, 10}) {
    metrics::ScopedSpan iteration{std::string(bench::kMainLoopHist)};
    MondrianOptions mo;
    mo.k = k;
    mo.qi_attrs = qi;
    auto a = MondrianAnonymize(data, hs, mo);
    DataflyOptions dopts;
    dopts.k = k;
    dopts.qi_attrs = qi;
    dopts.max_suppression = 0.1;
    auto b = DataflyAnonymize(data, hs, dopts);
    if (!a.ok() || !b.ok()) continue;

    bool both_anon = IsKAnonymous(a->generalized, k, qi) &&
                     IsKAnonymous(b->generalized, k, qi);
    auto self = IntersectionAttack(data, *a, *a, diagnosis);
    auto two = IntersectionAttack(data, *a, *b, diagnosis);
    table.AddRow({StrFormat("%zu", k),
                  StrFormat("%.2f%%", 100.0 * self.pinned_fraction),
                  StrFormat("%.2f%%", 100.0 * two.pinned_fraction),
                  StrFormat("%.1f%%", 100.0 * two.shrunk_fraction),
                  both_anon ? "yes" : "NO"});
    if (k == 3) {
      pinned_two_k3 = two.pinned_fraction;
      pinned_one_k3 = self.pinned_fraction;
      shrunk_k3 = two.shrunk_fraction;
    }
  }
  table.Print();

  // Contrast: DP composition is graceful and quantified.
  dp::PrivacyAccountant acc;
  acc.Spend(0.5, 0.0, "release A");
  acc.Spend(0.5, 0.0, "release B");
  auto composed = acc.BasicComposition();
  std::printf(
      "\nContrast (Section 1.1): two eps=0.5 DP releases compose to a "
      "quantified eps=%.1f guarantee; two k-anonymous releases compose to "
      "no guarantee at all.\n",
      composed.eps);

  bench::ShapeChecks checks;
  checks.CheckGreater(pinned_two_k3, pinned_one_k3 + 0.01,
                      "composition pins strictly more than one release");
  checks.CheckGreater(shrunk_k3, 0.3,
                      "composition shrinks candidate sets for many rows");
  checks.CheckBetween(composed.eps, 1.0, 1.0, "DP composes to eps exactly 1");
  return bench::FinishBench(ctx, "E11", checks);
}

}  // namespace
}  // namespace pso::kanon

int main(int argc, char** argv) {
  return pso::kanon::Run(argc, argv);
}
