// E15 — membership inference on aggregate statistics (Homer et al. [26],
// surveyed in Section 1): publishing exact per-attribute frequencies of a
// small pool lets an attacker holding a target's record decide membership
// almost perfectly; the attack sharpens with more attributes and dies
// under differentially private aggregates. Series: AUC / advantage vs
// (#attributes, pool size, eps).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "membership/membership.h"
#include "tools/flags.h"

namespace pso::membership {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_membership", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E15: membership inference on aggregate statistics (Homer et al.)",
      "aggregate allele frequencies of a pool reveal whether a target's "
      "data was included; DP aggregates neutralize the attack");

  TextTable table({"#attrs", "pool", "eps", "AUC", "advantage",
                   "E[T|in]", "E[T|out]"});

  double auc_strong = 0.0;
  double auc_few_attrs = 1.0;
  double auc_big_pool = 1.0;
  double auc_dp = 1.0;
  struct Config {
    int64_t attrs;
    size_t pool;
    double eps;
  };
  for (const Config& c : {Config{50, 50, 0.0}, Config{300, 50, 0.0},
                          Config{1000, 50, 0.0}, Config{300, 500, 0.0},
                          Config{300, 50, 1.0}, Config{300, 50, 0.1}}) {
    Universe u = MakeGenotypeUniverse(c.attrs, /*freq_seed=*/0x6e0);
    MembershipOptions opts;
    opts.pool_size = c.pool;
    opts.trials = 250;
    opts.eps = c.eps;
    opts.pool = par.get();
    MembershipResult r = bench::TimedIteration(
        [&] { return RunMembershipExperiment(u, opts); });
    table.AddRow({StrFormat("%lld", (long long)c.attrs),
                  StrFormat("%zu", c.pool),
                  c.eps == 0.0 ? "exact" : StrFormat("%.1f", c.eps),
                  StrFormat("%.3f", r.auc), StrFormat("%.3f", r.advantage),
                  StrFormat("%+.2f", r.mean_in),
                  StrFormat("%+.2f", r.mean_out)});
    if (c.attrs == 1000 && c.eps == 0.0) auc_strong = r.auc;
    if (c.attrs == 50 && c.eps == 0.0) auc_few_attrs = r.auc;
    if (c.pool == 500) auc_big_pool = r.auc;
    if (c.eps == 1.0) auc_dp = r.auc;
  }
  table.Print();
  std::printf(
      "\nThe shape of the Homer result: membership signal grows with the "
      "number of published statistics and shrinks with pool size; an "
      "eps-DP release flattens the ROC toward the diagonal.\n");

  // Wall-clock comparison on one representative configuration.
  {
    Universe u = MakeGenotypeUniverse(1000, /*freq_seed=*/0x6e0);
    MembershipOptions t_opts;
    t_opts.pool_size = 50;
    t_opts.trials = 250;
    bench::WallTimer timer;
    RunMembershipExperiment(u, t_opts);
    double serial_s = timer.Seconds();
    t_opts.pool = par.get();
    timer.Reset();
    RunMembershipExperiment(u, t_opts);
    bench::ReportSpeedup("membership experiment, 1000 attrs x 250 trials",
                         serial_s, timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(auc_strong, 0.97, 1.0,
                      "1000 exact aggregates: near-perfect membership "
                      "inference");
  checks.CheckGreater(auc_strong, auc_few_attrs + 0.03,
                      "more published statistics => stronger attack");
  checks.CheckGreater(auc_strong, auc_big_pool + 0.03,
                      "larger pools dilute the signal");
  checks.CheckBetween(auc_dp, 0.0, 0.75,
                      "eps=1 DP aggregates neutralize the attack");
  return bench::FinishBench(ctx, "E15", checks, par.get());
}

}  // namespace
}  // namespace pso::membership

int main(int argc, char** argv) { return pso::membership::Run(argc, argv); }
