// E3 — the Fundamental Law of Information Recovery (Dwork–Roth, quoted in
// Section 1): "overly accurate answers to too many questions will destroy
// privacy in a spectacular way." Series: reconstruction accuracy over the
// (#queries, per-query error) grid. Privacy survives only in the
// few-queries or large-noise corner; the DP-calibrated diagonal (noise
// grown with the query count) stays safe everywhere.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "recon/attacks.h"
#include "recon/oracle.h"

namespace pso {
namespace {

double Accuracy(size_t n, size_t queries, double alpha, uint64_t seed) {
  Rng rng(seed);
  auto secret = recon::RandomBits(n, rng);
  if (alpha <= 0.0) {
    recon::ExactOracle oracle(secret);
    auto r = recon::LeastSquaresReconstruct(oracle, queries, rng);
    return recon::FractionAgree(r.estimate, secret);
  }
  recon::BoundedNoiseOracle oracle(secret, alpha, seed * 31 + 7);
  auto r = recon::LeastSquaresReconstruct(oracle, queries, rng);
  return recon::FractionAgree(r.estimate, secret);
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_fundamental_law", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E3: the Fundamental Law of Information Recovery",
      "accuracy x #queries trade-off: too many too-accurate answers "
      "destroy privacy; noise that grows with the query count preserves "
      "it");

  const size_t n = 64;
  const std::vector<size_t> query_counts = {32, 64, 128, 320};
  const std::vector<double> alphas = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0};

  std::printf("n = %zu; cell = fraction of x recovered (0.5 ~ coin flip)\n\n",
              n);
  std::vector<std::string> headers = {"alpha \\ queries"};
  for (size_t q : query_counts) headers.push_back(StrFormat("%zu", q));
  TextTable table(headers);

  double many_accurate = 0.0;
  double few_accurate = 0.0;
  double many_noisy = 1.0;
  for (double alpha : alphas) {
    std::vector<std::string> row = {StrFormat("%.0f", alpha)};
    for (size_t q : query_counts) {
      double acc = bench::TimedIteration(
          [&] { return Accuracy(n, q, alpha, 1234 + q + (uint64_t)alpha * 13); });
      row.push_back(StrFormat("%.3f", acc));
      if (alpha <= 1.0 && q == 320) many_accurate = acc;
      if (alpha <= 1.0 && q == 32) few_accurate = acc;
      if (alpha == 64.0 && q == 320) many_noisy = acc;
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nDP-calibrated diagonal: Laplace noise with per-query eps = "
      "1/#queries (total budget eps=1)\n");
  TextTable dp_table({"queries", "per-query noise b", "accuracy"});
  double dp_worst = 0.0;
  for (size_t q : query_counts) {
    Rng rng(77 + q);
    auto secret = recon::RandomBits(n, rng);
    double eps_per_query = 1.0 / static_cast<double>(q);
    recon::LaplaceOracle oracle(secret, eps_per_query, 99 + q);
    double acc = bench::TimedIteration([&] {
      auto r = recon::LeastSquaresReconstruct(oracle, q, rng);
      return recon::FractionAgree(r.estimate, secret);
    });
    dp_worst = std::max(dp_worst, acc);
    dp_table.AddRow({StrFormat("%zu", q),
                     StrFormat("%.0f", 1.0 / eps_per_query),
                     StrFormat("%.3f", acc)});
  }
  dp_table.Print();

  bench::ShapeChecks checks;
  checks.CheckBetween(many_accurate, 0.95, 1.0,
                      "many accurate answers destroy privacy");
  checks.CheckBetween(many_noisy, 0.0, 0.85,
                      "heavy noise blocks reconstruction even at 320 queries");
  checks.CheckGreater(many_accurate, many_noisy, "noise is what saves x");
  checks.CheckGreater(many_accurate, few_accurate + 0.01,
                      "more queries extract more at fixed noise");
  checks.CheckBetween(dp_worst, 0.0, 0.9,
                      "budget-calibrated DP noise holds the line");
  return bench::FinishBench(ctx, "E3", checks);
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) {
  return pso::Run(argc, argv);
}
