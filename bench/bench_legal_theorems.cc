// E12 — Section 2.4: the legal theorems themselves. Runs the PSO games
// for k-anonymity (both anonymizers), l-diversity/t-closeness-satisfying
// releases, and DP mechanisms, converts the evidence into Legal Theorem
// 2.1 / Legal Corollary 2.1 instances, and prints the Article 29 Working
// Party comparison table of Section 2.4.3 (where every row conflicts with
// the Working Party's published opinion).

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"
#include "legal/report.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"

namespace pso::legal {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_legal_theorems", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E12: legal theorems (Section 2.4) and the Article 29 WP table",
      "k-anonymity (and variants) fail GDPR singling-out prevention "
      "(Legal Theorem 2.1 / Corollary 2.1); differential privacy needs "
      "further analysis; the WP opinion table is inverted");

  Universe u = MakeGicMedicalUniverse(100);
  const size_t n = 400;
  PsoGameOptions opts;
  opts.trials = 150;
  opts.weight_pool = 60000;
  PsoGame game(u.distribution, n, opts);

  auto q = MakeAttributeEquals(3, 0, "sex");

  // k-anonymity games.
  std::vector<PsoGameResult> kanon_games;
  for (KAnonAlgorithm algo :
       {KAnonAlgorithm::kDatafly, KAnonAlgorithm::kMondrian}) {
    auto mech = MakeKAnonymityMechanism(
        algo, 5, kanon::HierarchySet::Defaults(u.schema), {});
    kanon_games.push_back(bench::TimedIteration(
        [&] { return game.Run(*mech, *MakeKAnonHashAdversary()); }));
    kanon_games.push_back(bench::TimedIteration(
        [&] { return game.Run(*mech, *MakeKAnonMinimalityAdversary()); }));
  }

  // DP games.
  std::vector<PsoGameResult> dp_games;
  for (double eps : {0.5, 1.0}) {
    auto mech = MakeLaplaceCountMechanism(q, "sex=F", eps);
    dp_games.push_back(bench::TimedIteration([&] {
      return game.Run(*mech, *MakeTrivialHashAdversary(1.0 / (10.0 * n)));
    }));
    dp_games.push_back(bench::TimedIteration(
        [&] { return game.Run(*mech, *MakeCountTunedAdversary(q, "F")); }));
  }

  LegalReport report;
  LegalClaim kanon_claim = EvaluateSinglingOutClaim(
      "k-anonymity (Datafly & Mondrian, k=5; applies to l-diversity and "
      "t-closeness variants)",
      kanon_games);
  report.AddClaim(kanon_claim);
  report.AddClaim(DeriveAnonymizationCorollary(kanon_claim));
  LegalClaim dp_claim = EvaluateSinglingOutClaim(
      "differential privacy (Laplace counts, eps <= 1)", dp_games);
  report.AddClaim(dp_claim);
  report.AddClaim(DeriveAnonymizationCorollary(dp_claim));

  std::printf("%s\n", report.Render().c_str());

  bool kanon_risky = kanon_claim.verdict == Verdict::kFails;
  bool dp_risky = dp_claim.verdict == Verdict::kFails;
  auto rows = LegalReport::Article29Comparison({
      {"k-anonymity", kanon_risky},
      {"l-diversity", kanon_risky},  // footnote 3: variants inherit
      {"differential privacy", dp_risky},
  });
  std::printf("Section 2.4.3 — comparison with the Article 29 WP opinion:\n");
  std::printf("%s\n", LegalReport::RenderArticle29Table(rows).c_str());

  bench::ShapeChecks checks;
  checks.Check(kanon_claim.verdict == Verdict::kFails,
               "Legal Theorem 2.1: k-anonymity FAILS singling-out "
               "prevention");
  checks.Check(dp_claim.verdict == Verdict::kNeedsFurtherAnalysis,
               "DP: no attack found; verdict NEEDS FURTHER ANALYSIS "
               "(necessary != sufficient)");
  checks.Check(rows[0].conflict && rows[1].conflict && rows[2].conflict,
               "all three Article 29 WP rows conflict with the analysis");
  return bench::FinishBench(ctx, "E12", checks);
}

}  // namespace
}  // namespace pso::legal

int main(int argc, char** argv) {
  return pso::legal::Run(argc, argv);
}
