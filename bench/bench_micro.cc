// Microbenchmarks (google-benchmark) for the performance-critical
// primitives: sampling, predicate evaluation, anonymization, the solvers,
// and one full PSO game trial. These are throughput numbers, not paper
// claims — they document what experiment scales the library sustains.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "kanon/mondrian.h"
#include "pso/adversaries.h"
#include "pso/composition_attack.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "recon/attacks.h"
#include "solver/lp.h"

namespace pso {
namespace {

void BM_SampleGicRecord(benchmark::State& state) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.distribution.Sample(rng));
  }
}
BENCHMARK(BM_SampleGicRecord);

void BM_HashPredicateEval(benchmark::State& state) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(2);
  UniversalHash h(rng, 1000);
  auto p = MakeHashPredicate(u.schema, h, 0);
  Record r = u.distribution.Sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->Eval(r));
  }
}
BENCHMARK(BM_HashPredicateEval);

void BM_MondrianAnonymize(benchmark::State& state) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(3);
  Dataset data =
      u.distribution.SampleDataset(static_cast<size_t>(state.range(0)), rng);
  kanon::HierarchySet hs = kanon::HierarchySet::Defaults(u.schema);
  kanon::MondrianOptions opts;
  opts.k = 5;
  for (size_t a = 0; a < u.schema.NumAttributes(); ++a) {
    opts.qi_attrs.push_back(a);
  }
  for (auto _ : state) {
    auto result = kanon::MondrianAnonymize(data, hs, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MondrianAnonymize)->Arg(200)->Arg(1000);

void BM_LpDecode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  auto secret = recon::RandomBits(n, rng);
  for (auto _ : state) {
    recon::ExactOracle oracle(secret);
    auto r = recon::LpReconstruct(oracle, 4 * n, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LpDecode)->Arg(24)->Arg(48);

// Decoder-shaped L1-fit LP (n box variables, 5n equality rows with u/v
// residual splits) built once and solved per iteration.
LpProblem BuildL1FitLp(size_t n, uint64_t seed) {
  const size_t q = 5 * n;
  Rng rng(seed);
  LpProblem lp;
  std::vector<size_t> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = lp.AddVariable(0.0, 1.0, 0.0);
  for (size_t j = 0; j < q; ++j) {
    size_t u = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    size_t v = lp.AddVariable(0.0, LpProblem::kInfinity, 1.0);
    std::vector<std::pair<size_t, double>> row;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) row.emplace_back(x[i], 1.0);
    }
    row.emplace_back(u, 1.0);
    row.emplace_back(v, -1.0);
    lp.AddConstraint(row, Relation::kEqual,
                     static_cast<double>(rng.UniformInt(0, (int64_t)n / 2)));
  }
  return lp;
}

// Head-to-head number behind --lp-backend: the same LP solved cold by
// the named backend.
void BM_LpSolveBackend(benchmark::State& state, const char* backend_name) {
  LpProblem lp = BuildL1FitLp(static_cast<size_t>(state.range(0)), 6);
  Result<std::unique_ptr<LpBackend>> backend = MakeLpBackend(backend_name);
  for (auto _ : state) {
    auto sol = lp.SolveWith(**backend, LpSolveOptions{});
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK_CAPTURE(BM_LpSolveBackend, dense, "dense")->Arg(24)->Arg(48);
BENCHMARK_CAPTURE(BM_LpSolveBackend, sparse, "sparse")->Arg(24)->Arg(48);

// Warm restart of an already-optimal basis: the floor of a warm-started
// re-solve (factorize + price, zero pivots).
void BM_LpSolveSparseWarm(benchmark::State& state) {
  LpProblem lp = BuildL1FitLp(static_cast<size_t>(state.range(0)), 6);
  Result<std::unique_ptr<LpBackend>> backend = MakeLpBackend("sparse");
  LpBasis basis;
  LpSolveOptions seed_options;
  seed_options.final_basis = &basis;
  auto seed_solve = lp.SolveWith(**backend, seed_options);
  benchmark::DoNotOptimize(seed_solve);
  LpSolveOptions warm;
  warm.warm_start = &basis;
  for (auto _ : state) {
    auto sol = lp.SolveWith(**backend, warm);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_LpSolveSparseWarm)->Arg(24)->Arg(48);

void BM_AdaptiveCountAttack(benchmark::State& state) {
  Universe u = MakeGicMedicalUniverse(100);
  Rng rng(5);
  Dataset x = u.distribution.SampleDataset(500, rng);
  for (auto _ : state) {
    auto attack = AdaptiveCountAttack(x, 1e-4, 200, rng);
    benchmark::DoNotOptimize(attack);
  }
}
BENCHMARK(BM_AdaptiveCountAttack);

void BM_PsoGameTrialKAnon(benchmark::State& state) {
  Universe u = MakeGicMedicalUniverse(100);
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 5, kanon::HierarchySet::Defaults(u.schema),
      {});
  auto adv = MakeKAnonMinimalityAdversary();
  PsoGameOptions opts;
  opts.trials = 1;
  opts.weight_pool = 20000;
  for (auto _ : state) {
    // TimedIteration feeds the bench.main_loop histogram so bench_micro's
    // JSON report carries tail latencies like the shape-check harnesses.
    bench::TimedIteration([&] {
      PsoGame game(u.distribution, 300, opts);
      benchmark::DoNotOptimize(game.Run(*mech, *adv));
      return 0;
    });
  }
}
BENCHMARK(BM_PsoGameTrialKAnon);

}  // namespace
}  // namespace pso

// Custom main instead of BENCHMARK_MAIN(): strips the repo-standard
// flags (--json/--trace/--log-level; google-benchmark would reject
// them), runs the registered benchmarks, then emits the same
// BENCH_*.json document the shape-check harnesses write — no shape
// checks here, but the counters section still records what the measured
// primitives executed (LP pivots etc.).
int main(int argc, char** argv) {
  pso::bench::BenchContext ctx =
      pso::bench::MakeBenchContext("bench_micro", argc, argv);
  ctx.threads = 1;  // microbenchmarks run serially
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" || arg == "--trace" || arg == "--log-level" ||
        arg == "--lp-backend" || arg == "--sat-backend" ||
        arg == "--solver-watchdog-ms") {
      if (i + 1 < argc) ++i;  // skip the path operand
      continue;
    }
    if (arg.rfind("--json=", 0) == 0 || arg.rfind("--trace=", 0) == 0 ||
        arg.rfind("--log-level=", 0) == 0 ||
        arg.rfind("--lp-backend=", 0) == 0 ||
        arg.rfind("--sat-backend=", 0) == 0 ||
        arg.rfind("--solver-watchdog-ms=", 0) == 0) {
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pso::bench::ShapeChecks no_checks;
  return pso::bench::FinishBench(ctx, "micro", no_checks);
}
