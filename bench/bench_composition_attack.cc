// E6 — Theorems 2.7/2.8: PSO security does not compose. Three exhibits:
//  (a) the explicit ciphertext/pad pair (Theorem 2.7): each alone secure,
//      the bundle surrenders x_1 exactly;
//  (b) adaptive count composition (Theorem 2.8): ~log(1/tau) count queries
//      binary-search an isolating hash interval — success ~100% while each
//      count mechanism is individually secure (E5);
//  (c) query-count series: queries needed grow logarithmically as the
//      negligibility threshold tau shrinks, while the trivial baseline
//      collapses linearly.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/composition_attack.h"
#include "pso/game.h"
#include "pso/interactive.h"
#include "pso/mechanisms.h"
#include "tools/flags.h"

namespace pso {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_composition_attack", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E6: PSO security is not closed under composition (Thms 2.7, 2.8)",
      "individually secure mechanisms compose into a near-certain "
      "singling-out attack; count queries learn enough bits of one record "
      "to isolate it with a negligible-weight predicate");

  Universe u = MakeGicMedicalUniverse(100);
  const size_t n = 500;

  // (a) Theorem 2.7 pair.
  std::printf("(a) Theorem 2.7 explicit pair\n");
  TextTable pair_table({"mechanism", "adversary", "PSO rate", "baseline"});
  PsoGameOptions opts;
  opts.trials = 150;
  opts.weight_pool = 60000;
  opts.pool = par.get();
  PsoGame game(u.distribution, n, opts);
  auto decrypt = MakeDecryptPairAdversary();
  double alone_worst = 0.0;
  double bundle_rate = 0.0;
  for (const MechanismRef& mech :
       {MakeCiphertextMechanism(), MakePadMechanism(),
        MakeBundleMechanism(
            {MakeCiphertextMechanism(), MakePadMechanism()})}) {
    auto r = bench::TimedIteration([&] { return game.Run(*mech, *decrypt); });
    pair_table.AddRow({r.mechanism, r.adversary,
                       StrFormat("%.4f", r.pso_success.rate()),
                       StrFormat("%.4f", r.baseline)});
    if (mech->Name().find("(") == std::string::npos) {
      alone_worst = std::max(alone_worst, r.pso_success.rate());
    } else {
      bundle_rate = r.pso_success.rate();
    }
  }
  pair_table.Print();

  // (b) + (c) Theorem 2.8 count composition across tau.
  std::printf("\n(b,c) count-mechanism composition (Theorem 2.8)\n");
  TextTable comp_table({"tau", "variant", "PSO rate", "mean #queries",
                        "baseline"});
  double adaptive_rate_tight = 0.0;
  double queries_loose = 0.0;
  double queries_tight = 0.0;
  for (double tau : {1.0 / (10.0 * n), 1.0 / (100.0 * n),
                     1.0 / (10000.0 * n)}) {
    auto adaptive =
        RunCompositionGame(u.distribution, n, 60, true, tau, 400, 0xBEEF);
    comp_table.AddRow({StrFormat("%.2e", tau), "adaptive",
                       StrFormat("%.4f", adaptive.pso_success.rate()),
                       StrFormat("%.1f", adaptive.queries_used.mean()),
                       StrFormat("%.4f", adaptive.baseline)});
    if (tau == 1.0 / (10.0 * n)) {
      queries_loose = adaptive.queries_used.mean();
    }
    if (tau == 1.0 / (10000.0 * n)) {
      adaptive_rate_tight = adaptive.pso_success.rate();
      queries_tight = adaptive.queries_used.mean();
    }
  }
  auto bucket = RunCompositionGame(u.distribution, n, 30, false,
                                   1.0 / (10.0 * n), 0, 0xF00D);
  comp_table.AddRow({StrFormat("%.2e", 1.0 / (10.0 * n)), "non-adaptive",
                     StrFormat("%.4f", bucket.pso_success.rate()),
                     StrFormat("%.1f", bucket.queries_used.mean()),
                     StrFormat("%.4f", bucket.baseline)});
  comp_table.Print();
  std::printf(
      "\ntau shrank 1000x; queries grew by ~log2(1000) ~ 10 "
      "(%.1f -> %.1f): ell = O(log n) count mechanisms suffice.\n",
      queries_loose, queries_tight);

  // (d) Interactive ablation: the same binary-search attacker against
  // query sessions with per-query Laplace noise — Theorem 2.9 closing the
  // door Theorem 2.8 opened.
  std::printf("\n(d) interactive sessions: attack vs per-query noise\n");
  TextTable session_table({"session", "PSO rate", "baseline"});
  PsoGameOptions sopts;
  sopts.trials = 60;
  sopts.weight_pool = 60000;
  sopts.pool = par.get();
  PsoGame session_game(u.distribution, n, sopts);
  auto searcher = MakeBinarySearchIsolationAdversary(200);
  double exact_session_rate = 0.0;
  double noisy_session_rate = 1.0;
  {
    auto r = session_game.RunInteractive(*MakeExactCountSessionMechanism(),
                                         *searcher);
    session_table.AddRow({r.mechanism,
                          StrFormat("%.4f", r.pso_success.rate()),
                          StrFormat("%.4f", r.baseline)});
    exact_session_rate = r.pso_success.rate();
  }
  for (double eps : {2.0, 0.5}) {
    auto r = session_game.RunInteractive(
        *MakeLaplaceCountSessionMechanism(eps), *searcher);
    session_table.AddRow({r.mechanism,
                          StrFormat("%.4f", r.pso_success.rate()),
                          StrFormat("%.4f", r.baseline)});
    noisy_session_rate = std::min(noisy_session_rate, r.pso_success.rate());
  }
  session_table.Print();

  // Wall-clock comparison on one representative configuration (the
  // interactive exact-count session game).
  {
    PsoGameOptions t_opts;
    t_opts.trials = 60;
    t_opts.weight_pool = 60000;
    bench::WallTimer timer;
    PsoGame serial_game(u.distribution, n, t_opts);
    serial_game.RunInteractive(*MakeExactCountSessionMechanism(), *searcher);
    double serial_s = timer.Seconds();
    t_opts.pool = par.get();
    timer.Reset();
    PsoGame parallel_game(u.distribution, n, t_opts);
    parallel_game.RunInteractive(*MakeExactCountSessionMechanism(),
                                 *searcher);
    bench::ReportSpeedup("interactive count sessions, 60 trials", serial_s,
                         timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(alone_worst, 0.0, 0.05,
                      "each Thm 2.7 mechanism alone is PSO-secure");
  checks.CheckBetween(bundle_rate, 0.9, 1.0,
                      "the Thm 2.7 bundle is broken outright");
  checks.CheckBetween(adaptive_rate_tight, 0.9, 1.0,
                      "adaptive count composition succeeds at tiny tau");
  checks.CheckBetween(queries_tight - queries_loose, 5.0, 18.0,
                      "1000x smaller tau costs ~log2(1000)~10 extra queries");
  checks.CheckBetween(bucket.pso_success.rate(), 0.9, 1.0,
                      "non-adaptive bucket variant also succeeds");
  checks.CheckBetween(exact_session_rate, 0.9, 1.0,
                      "interactive exact sessions fall to the searcher");
  checks.CheckBetween(noisy_session_rate, 0.0, 0.1,
                      "per-query Laplace noise derails the binary search");
  return bench::FinishBench(ctx, "E6", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) { return pso::Run(argc, argv); }
