// E7 — Theorem 2.9: eps-differentially private mechanisms prevent
// predicate singling out. Series: PSO success of the attacker family vs
// eps for Laplace counts, geometric counts, and noisy histograms — all at
// the trivial baseline — side by side with the k-anonymity mechanism the
// same attackers demolish (E8's headline, repeated here as the contrast
// the paper draws in Section 2.3).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "tools/flags.h"

namespace pso {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_dp_pso", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E7: differential privacy prevents PSO (Theorem 2.9)",
      "for constant eps, no attacker singles out under an eps-DP "
      "mechanism; contrast with k-anonymity under the same game");

  Universe u = MakeGicMedicalUniverse(100);
  const size_t n = 400;
  auto q = MakeAttributeEquals(3, 0, "sex");

  PsoGameOptions opts;
  opts.trials = 220;
  opts.weight_pool = 60000;
  opts.pool = par.get();
  PsoGame game(u.distribution, n, opts);

  TextTable table({"mechanism", "adversary", "PSO rate", "baseline",
                   "advantage"});
  double dp_worst_advantage = -1.0;
  for (double eps : {0.1, 0.5, 1.0, 2.0}) {
    for (const MechanismRef& mech :
         {MakeLaplaceCountMechanism(q, "sex=F", eps),
          MakeGeometricCountMechanism(q, "sex=F", eps),
          MakeNoisyHistogramMechanism(4, eps)}) {
      for (const AdversaryRef& adv :
           {MakeTrivialHashAdversary(1.0 / (10.0 * n)),
            MakeCountTunedAdversary(q, "sex=F")}) {
        auto r =
            bench::TimedIteration([&] { return game.Run(*mech, *adv); });
        table.AddRow({r.mechanism, r.adversary,
                      StrFormat("%.4f", r.pso_success.rate()),
                      StrFormat("%.4f", r.baseline),
                      StrFormat("%+.4f", r.advantage)});
        if (r.advantage > dp_worst_advantage) {
          dp_worst_advantage = r.advantage;
        }
      }
    }
  }

  // Contrast: the k-anonymity mechanism under the same game and budget.
  auto kanon_mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, 5, kanon::HierarchySet::Defaults(u.schema),
      /*qi_attrs=*/{});
  auto kanon_result = game.Run(*kanon_mech, *MakeKAnonMinimalityAdversary());
  table.AddRow({kanon_result.mechanism, kanon_result.adversary,
                StrFormat("%.4f", kanon_result.pso_success.rate()),
                StrFormat("%.4f", kanon_result.baseline),
                StrFormat("%+.4f", kanon_result.advantage)});
  table.Print();

  std::printf(
      "\nNote (Section 2.3.3): the exact count M#q is NOT differentially "
      "private yet also prevents PSO (E5) — DP is sufficient, not "
      "necessary.\n");

  // Wall-clock comparison on one representative configuration.
  {
    PsoGameOptions t_opts;
    t_opts.trials = 220;
    t_opts.weight_pool = 60000;
    auto t_mech = MakeLaplaceCountMechanism(q, "sex=F", 1.0);
    auto t_adv = MakeCountTunedAdversary(q, "sex=F");
    bench::WallTimer timer;
    PsoGame serial_game(u.distribution, n, t_opts);
    serial_game.Run(*t_mech, *t_adv);
    double serial_s = timer.Seconds();
    t_opts.pool = par.get();
    timer.Reset();
    PsoGame parallel_game(u.distribution, n, t_opts);
    parallel_game.Run(*t_mech, *t_adv);
    bench::ReportSpeedup("Laplace-count PSO game, 220 trials", serial_s,
                         timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(dp_worst_advantage, -1.0, 0.05,
                      "no attacker gains advantage against any DP release");
  checks.CheckGreater(kanon_result.advantage, 0.5,
                      "same game, k-anonymity falls (the paper's contrast)");
  return bench::FinishBench(ctx, "E7", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) { return pso::Run(argc, argv); }
