// E5 — Theorem 2.5: the exact count mechanism M#q prevents predicate
// singling out. Series: PSO success of best-effort attackers vs n, against
// the trivial baseline (which is exactly what "prevents PSO" means at
// finite n: no attacker beats the output-blind bound).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"

namespace pso {
namespace {

int Run() {
  bench::Banner(
      "E5: count mechanisms prevent predicate singling out (Theorem 2.5)",
      "for every attacker, Pr[isolation with negligible-weight predicate] "
      "stays at the trivial baseline as n grows");

  Universe u = MakeGicMedicalUniverse(100);
  auto q = MakeAttributeEquals(3, 0, "sex");
  auto mech = MakeCountMechanism(q, "sex=F");

  TextTable table({"n", "adversary", "PSO rate", "CI hi", "baseline",
                   "advantage"});
  double max_advantage = -1.0;
  for (size_t n : {128, 256, 512, 1024}) {
    PsoGameOptions opts;
    opts.trials = 250;
    opts.weight_pool = 60000;
    opts.seed = 0xC0DE + n;
    PsoGame game(u.distribution, n, opts);
    for (const AdversaryRef& adv :
         {MakeTrivialHashAdversary(1.0 / (10.0 * n)),
          MakeCountTunedAdversary(q, "sex=F"),
          MakeUniqueRecordAdversary()}) {
      auto r = game.Run(*mech, *adv);
      table.AddRow({StrFormat("%zu", n), r.adversary,
                    StrFormat("%.4f", r.pso_success.rate()),
                    StrFormat("%.4f", r.pso_success.WilsonInterval().hi),
                    StrFormat("%.4f", r.baseline),
                    StrFormat("%+.4f", r.advantage)});
      if (r.advantage > max_advantage) max_advantage = r.advantage;
    }
  }
  table.Print();
  std::printf(
      "\n(The UniqueRecord adversary expects a raw dataset and concedes "
      "against a count output — included as a sanity pole.)\n");

  bench::ShapeChecks checks;
  checks.CheckBetween(max_advantage, -1.0, 0.05,
                      "no attacker beats the trivial baseline vs M#q");
  return checks.Finish("E5");
}

}  // namespace
}  // namespace pso

int main() { return pso::Run(); }
