// E5 — Theorem 2.5: the exact count mechanism M#q prevents predicate
// singling out. Series: PSO success of best-effort attackers vs n, against
// the trivial baseline (which is exactly what "prevents PSO" means at
// finite n: no attacker beats the output-blind bound).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "tools/flags.h"

namespace pso {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_count_pso", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E5: count mechanisms prevent predicate singling out (Theorem 2.5)",
      "for every attacker, Pr[isolation with negligible-weight predicate] "
      "stays at the trivial baseline as n grows");

  Universe u = MakeGicMedicalUniverse(100);
  auto q = MakeAttributeEquals(3, 0, "sex");
  auto mech = MakeCountMechanism(q, "sex=F");

  TextTable table({"n", "adversary", "PSO rate", "CI hi", "baseline",
                   "advantage"});
  double max_advantage = -1.0;
  for (size_t n : {128, 256, 512, 1024}) {
    PsoGameOptions opts;
    opts.trials = 250;
    opts.weight_pool = 60000;
    opts.seed = 0xC0DE + n;
    opts.pool = par.get();
    PsoGame game(u.distribution, n, opts);
    for (const AdversaryRef& adv :
         {MakeTrivialHashAdversary(1.0 / (10.0 * n)),
          MakeCountTunedAdversary(q, "sex=F"),
          MakeUniqueRecordAdversary()}) {
      auto r = bench::TimedIteration([&] { return game.Run(*mech, *adv); });
      table.AddRow({StrFormat("%zu", n), r.adversary,
                    StrFormat("%.4f", r.pso_success.rate()),
                    StrFormat("%.4f", r.pso_success.WilsonInterval().hi),
                    StrFormat("%.4f", r.baseline),
                    StrFormat("%+.4f", r.advantage)});
      if (r.advantage > max_advantage) max_advantage = r.advantage;
    }
  }
  table.Print();
  std::printf(
      "\n(The UniqueRecord adversary expects a raw dataset and concedes "
      "against a count output — included as a sanity pole.)\n");

  // Wall-clock comparison on one representative configuration. The
  // numbers are identical by construction; only the time differs.
  {
    PsoGameOptions t_opts;
    t_opts.trials = 250;
    t_opts.weight_pool = 60000;
    t_opts.seed = 0xC0DE + 1024;
    auto adv = MakeCountTunedAdversary(q, "sex=F");
    bench::WallTimer timer;
    PsoGame serial_game(u.distribution, 1024, t_opts);
    serial_game.Run(*mech, *adv);
    double serial_s = timer.Seconds();
    t_opts.pool = par.get();
    timer.Reset();
    PsoGame parallel_game(u.distribution, 1024, t_opts);
    parallel_game.Run(*mech, *adv);
    bench::ReportSpeedup("PSO game, n=1024 x 250 trials", serial_s,
                         timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(max_advantage, -1.0, 0.05,
                      "no attacker beats the trivial baseline vs M#q");
  return bench::FinishBench(ctx, "E5", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) { return pso::Run(argc, argv); }
