// E8 — Theorem 2.10 and Cohen's strengthening: typical k-anonymizers
// enable predicate singling out. Exhibits:
//  (1) GIC universe (8 attributes), Mondrian k in {2,5}: the class+hash
//      attack isolates ~1/e ~ 37%; the downcoding/minimality attack on
//      tight ranges approaches 100% at every k.
//  (2) Dimensionality ablation: Theorem 2.10's precondition is that class
//      predicates have negligible weight, which "a typical dataset [with]
//      many more attributes" satisfies — on a 96-attribute sparse
//      universe the hash attack survives k = 25; on 8 attributes it fades
//      for large k because the class boxes simply are not negligible.
//  (3) Datafly ablation: full-domain global recoding escapes the attack
//      at this scale only by generalizing the data into uselessness.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"
#include "kanon/checks.h"
#include "kanon/datafly.h"
#include "kanon/metrics.h"
#include "kanon/mondrian.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"
#include "tools/flags.h"

namespace pso {
namespace {

PsoGameResult RunGame(const Universe& u, size_t n, size_t k,
                      const AdversaryRef& adv, size_t trials,
                      ThreadPool* pool = nullptr) {
  PsoGameOptions opts;
  opts.trials = trials;
  opts.weight_pool = 150000;
  opts.seed = 0xE8 + k + n;
  opts.pool = pool;
  PsoGame game(u.distribution, n, opts);
  auto mech = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, k, kanon::HierarchySet::Defaults(u.schema),
      /*qi_attrs=*/{});
  return game.Run(*mech, *adv);
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_kanon_pso", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E8: k-anonymity fails to prevent PSO (Theorem 2.10 + Cohen [12])",
      "hash attack isolates ~37% (~1/e); downcoding/minimality attack on "
      "tight ranges approaches 100%; predicates of negligible weight need "
      "schemas with enough attributes (the paper's 'typical dataset')");

  Universe gic = MakeGicMedicalUniverse(100);

  // (1) GIC sweep.
  std::printf("(1) GIC universe (8 attributes)\n");
  TextTable table({"universe", "k", "n", "adversary", "PSO rate", "CI lo",
                   "baseline", "advantage"});
  double hash_at_5 = 0.0;
  double minimality_worst = 1.0;
  double minimality_at_5 = 0.0;
  for (size_t k : {2, 5, 10, 25}) {
    const size_t n = 80 * k;
    for (const AdversaryRef& adv :
         {MakeKAnonHashAdversary(), MakeKAnonMinimalityAdversary()}) {
      bool is_hash = adv->Name().find("Hash") != std::string::npos;
      if (is_hash && k > 5) continue;  // covered by the ablation below
      auto r = bench::TimedIteration(
          [&] { return RunGame(gic, n, k, adv, 100, par.get()); });
      table.AddRow({"GIC(d=8)", StrFormat("%zu", k), StrFormat("%zu", n),
                    r.adversary, StrFormat("%.4f", r.pso_success.rate()),
                    StrFormat("%.4f", r.pso_success.WilsonInterval().lo),
                    StrFormat("%.4f", r.baseline),
                    StrFormat("%+.4f", r.advantage)});
      if (is_hash && k == 5) hash_at_5 = r.pso_success.rate();
      if (!is_hash) {
        minimality_worst = std::min(minimality_worst, r.pso_success.rate());
        if (k == 5) minimality_at_5 = r.pso_success.rate();
      }
    }
  }
  table.Print();

  // (2) Dimensionality ablation for the hash attack at large k.
  std::printf(
      "\n(2) hash attack vs schema dimension (sparse ratings universes)\n");
  TextTable dim_table({"universe", "k", "n", "PSO rate", "baseline",
                       "advantage"});
  double highdim_at_10 = 0.0;
  Universe ratings = MakeRatingsUniverse(96, 0.06);
  for (size_t k : {5, 10, 25}) {
    const size_t n = 80 * k;
    auto r = RunGame(ratings, n, k, MakeKAnonHashAdversary(), 60, par.get());
    dim_table.AddRow({"Ratings(d=96)", StrFormat("%zu", k),
                      StrFormat("%zu", n),
                      StrFormat("%.4f", r.pso_success.rate()),
                      StrFormat("%.4f", r.baseline),
                      StrFormat("%+.4f", r.advantage)});
    if (k == 10) highdim_at_10 = r.pso_success.rate();
  }
  // The low-dimension contrast at k = 10.
  auto low = RunGame(gic, 800, 10, MakeKAnonHashAdversary(), 60, par.get());
  dim_table.AddRow({"GIC(d=8)", "10", "800",
                    StrFormat("%.4f", low.pso_success.rate()),
                    StrFormat("%.4f", low.baseline),
                    StrFormat("%+.4f", low.advantage)});
  dim_table.Print();
  std::printf(
      "\nAt k = 25 even 96 dimensions leave class boxes too heavy for the "
      "*pure* hash attack at finite n (the paper's claim is asymptotic, "
      "with dimension growing in n) — yet the minimality attack above "
      "still singles out ~95%% at k = 25: generalization-based releases "
      "leak far more than the generic argument uses (Cohen [12]).\n");

  // (3) Datafly ablation: global full-domain recoding.
  Rng rng(0xDA7A);
  const size_t n_ab = 400;
  Dataset sample = gic.distribution.SampleDataset(n_ab, rng);
  kanon::DataflyOptions dopts;
  dopts.k = 5;
  for (size_t a = 0; a < gic.schema.NumAttributes(); ++a) {
    dopts.qi_attrs.push_back(a);
  }
  dopts.max_suppression = 0.05;
  auto datafly = kanon::DataflyAnonymize(
      sample, kanon::HierarchySet::Defaults(gic.schema), dopts);
  double datafly_loss =
      datafly.ok()
          ? kanon::GeneralizedInformationLoss(datafly->generalized)
          : 1.0;
  kanon::MondrianOptions mopts;
  mopts.k = 5;
  mopts.qi_attrs = dopts.qi_attrs;
  auto mondrian = kanon::MondrianAnonymize(
      sample, kanon::HierarchySet::Defaults(gic.schema), mopts);
  double mondrian_loss =
      mondrian.ok()
          ? kanon::GeneralizedInformationLoss(mondrian->generalized)
          : 1.0;
  std::printf(
      "\n(3) Datafly ablation: information loss %.3f vs Mondrian %.3f — "
      "global recoding at this scale 'protects' only by destroying the "
      "information content Theorem 2.10's typical anonymizer optimizes "
      "for.\n",
      datafly_loss, mondrian_loss);

  // Footnote 3: the attacked release also satisfies the stronger variants.
  size_t diagnosis = 4;
  bool ldiv2 = mondrian.ok() && kanon::IsLDiverse(sample, mondrian->classes,
                                                  diagnosis, 2);
  std::printf(
      "Attacked Mondrian(k=5) release: 2-diverse on diagnosis = %s, "
      "t-closeness value = %.3f (the variants inherit the failure).\n",
      ldiv2 ? "yes" : "no",
      mondrian.ok()
          ? kanon::TClosenessValue(sample, mondrian->classes, diagnosis)
          : 1.0);

  // Wall-clock comparison on one representative configuration.
  {
    auto adv = MakeKAnonMinimalityAdversary();
    bench::WallTimer timer;
    RunGame(gic, 400, 5, adv, 100);
    double serial_s = timer.Seconds();
    timer.Reset();
    RunGame(gic, 400, 5, adv, 100, par.get());
    bench::ReportSpeedup("Mondrian(k=5) game, n=400 x 100 trials", serial_s,
                         timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(hash_at_5, 0.22, 0.50,
                      "hash attack on Mondrian(k=5) isolates ~37% (1/e)");
  checks.CheckBetween(minimality_at_5, 0.80, 1.0,
                      "minimality attack approaches 100% (Cohen)");
  checks.CheckGreater(minimality_at_5, hash_at_5,
                      "downcoding strictly beats the 1/e attack");
  checks.CheckGreater(minimality_worst, 0.7,
                      "minimality attack survives every k in {2,5,10,25}");
  checks.CheckGreater(highdim_at_10, 0.25,
                      "hash attack survives k=10 on the 96-attribute "
                      "universe");
  checks.CheckGreater(highdim_at_10, low.pso_success.rate() + 0.1,
                      "dimensionality is what makes class weights "
                      "negligible (d=96 vs d=8 at k=10)");
  checks.CheckGreater(datafly_loss, mondrian_loss + 0.2,
                      "global recoding escapes only by destroying utility");
  return bench::FinishBench(ctx, "E8", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) { return pso::Run(argc, argv); }
