// E1 — Theorem 1.1(i): an attacker issuing all 2^n subset queries defeats
// any mechanism whose per-query error is small relative to n. Series:
// reconstruction accuracy vs the error parameter for three mechanisms —
//  * bounded uniform noise  — random error: the attack wins at ANY alpha
//    (max-consistency identifies x), underscoring that Theorem 1.1's
//    constant is about worst-case, structured error;
//  * rounding               — structured error: defeats the attack once
//    the granularity swallows the counts;
//  * decoy answering        — the tight information-theoretic defense:
//    exact answers about a dataset ~2*alpha flips away caps the attacker
//    at 1 - flips/n accuracy, matching the alpha = c*n threshold.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "recon/attacks.h"
#include "recon/oracle.h"
#include "tools/flags.h"

namespace pso {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_recon_exponential", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E1: exhaustive reconstruction (Dinur-Nissim, Theorem 1.1(i))",
      "with all 2^n subset queries, per-query error below c*n admits "
      "reconstruction up to a small fraction of entries; only error of "
      "order n (structured, not random) prevents it");

  const size_t n = 12;
  const size_t trials = 8;
  std::printf("n = %zu bits, %zu trials per cell, 2^n = %d queries\n\n", n,
              trials, 1 << n);

  TextTable table({"alpha/n", "acc(bounded)", "acc(rounding)",
                   "acc(decoy, 2a flips)"});
  double bounded_small = 0.0;
  double rounding_small = 0.0;
  double rounding_large = 1.0;
  double decoy_large = 1.0;
  double bounded_large = 0.0;
  for (double ratio : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    double alpha = ratio * static_cast<double>(n);
    size_t flips = static_cast<size_t>(2.0 * alpha);
    RunningStats bounded_acc;
    RunningStats rounding_acc;
    RunningStats decoy_acc;
    for (size_t t = 0; t < trials; ++t) {
      metrics::ScopedSpan iteration{std::string(bench::kMainLoopHist)};
      Rng rng(1000 + t);
      auto secret = recon::RandomBits(n, rng);
      {
        recon::BoundedNoiseOracle oracle(secret, alpha, 77 + t);
        auto r = recon::ExhaustiveReconstruct(oracle, alpha, par.get());
        bounded_acc.Add(recon::FractionAgree(r.estimate, secret));
      }
      {
        recon::RoundingOracle oracle(secret, 2.0 * alpha);
        auto r = recon::ExhaustiveReconstruct(oracle, alpha, par.get());
        rounding_acc.Add(recon::FractionAgree(r.estimate, secret));
      }
      {
        recon::DecoyOracle oracle(secret, flips, 55 + t);
        auto r = recon::ExhaustiveReconstruct(oracle, alpha, par.get());
        decoy_acc.Add(recon::FractionAgree(r.estimate, secret));
      }
    }
    table.AddRow({StrFormat("%.2f", ratio),
                  StrFormat("%.3f", bounded_acc.mean()),
                  StrFormat("%.3f", rounding_acc.mean()),
                  StrFormat("%.3f", decoy_acc.mean())});
    if (ratio == 0.05) {
      bounded_small = bounded_acc.mean();
      rounding_small = rounding_acc.mean();
    }
    if (ratio == 0.5) {
      rounding_large = rounding_acc.mean();
      decoy_large = decoy_acc.mean();
      bounded_large = bounded_acc.mean();
    }
  }
  table.Print();

  // Wall-clock comparison: one n=14 exhaustive scan (2^14 candidates
  // against 2^14 queries), serial vs the worker pool.
  {
    const size_t big_n = 14;
    Rng rng(0xE1);
    auto secret = recon::RandomBits(big_n, rng);
    double alpha = 0.1 * static_cast<double>(big_n);
    recon::RoundingOracle oracle(secret, 2.0 * alpha);
    bench::WallTimer timer;
    recon::ExhaustiveReconstruct(oracle, alpha);
    double serial_s = timer.Seconds();
    timer.Reset();
    recon::ExhaustiveReconstruct(oracle, alpha, par.get());
    bench::ReportSpeedup("exhaustive reconstruction, n=14", serial_s,
                         timer.Seconds(), par.threads);
  }

  bench::ShapeChecks checks;
  checks.CheckBetween(bounded_small, 0.95, 1.0,
                      "small error: blatant non-privacy (bounded noise)");
  checks.CheckBetween(rounding_small, 0.9, 1.0,
                      "small error: blatant non-privacy (rounding)");
  checks.CheckBetween(rounding_large, 0.0, 0.85,
                      "rounding at granularity ~n defeats the attack");
  checks.CheckBetween(decoy_large, 0.0, 0.8,
                      "decoy answering caps accuracy at ~1 - 2*alpha/n");
  checks.CheckBetween(bounded_large, 0.9, 1.0,
                      "random noise does NOT protect even at alpha = n/2 "
                      "(worst-case error is what Theorem 1.1 is about)");
  return bench::FinishBench(ctx, "E1", checks, par.get());
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) { return pso::Run(argc, argv); }
