// E2 — Theorem 1.1(ii): polynomially many random subset queries with error
// alpha = c*sqrt(n) admit reconstruction by LP decoding. Series: accuracy
// vs alpha/sqrt(n) for the LP and least-squares decoders across n; the
// crossover from near-perfect to failed reconstruction sits at
// alpha/sqrt(n) of order 1.
//
// The accuracy series runs on the process-default LP backend (sparse
// revised simplex unless --lp-backend overrides) with the warm-start
// basis threaded across same-shaped decode LPs. A second "backend duel"
// leg then replays one trial of the full grid on each backend by name and
// compares pivot-work counters, wall clock, and LP objectives — the
// dense tableau is the differential oracle, and the duel's shape checks
// are the performance contract of the sparse engine (>= 10x less pivot
// work, strictly faster, same objectives).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/table.h"
#include "recon/attacks.h"
#include "recon/oracle.h"
#include "solver/lp_backend.h"

namespace pso {
namespace {

// The E2 grid: both legs iterate exactly these points so the duel solves
// the same LP instances the accuracy series does.
constexpr size_t kNs[] = {32, 64};
constexpr double kCs[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};

// One LP decode at grid point (n, c, trial): same seeding for the oracle
// and query stream on every call, so repeated runs (and the two duel
// backends) see bit-identical LP instances.
struct DecodePoint {
  double accuracy = 0.0;
  double residual = 0.0;
  bool ok = false;
};

DecodePoint LpDecodeAt(size_t n, double c, size_t trial,
                       const recon::LpDecodeOptions& options) {
  const size_t queries = 5 * n;
  const double alpha = c * std::sqrt(static_cast<double>(n));
  Rng rng(500 + 17 * trial + n);
  auto secret = recon::RandomBits(n, rng);
  DecodePoint out;
  if (alpha == 0.0) {
    recon::ExactOracle oracle(secret);
    auto r = recon::LpReconstruct(oracle, queries, rng, options);
    if (!r.ok()) return out;
    out.ok = true;
    out.accuracy = recon::FractionAgree(r->estimate, secret);
    out.residual = r->decoder_residual;
  } else {
    recon::BoundedNoiseOracle oracle(secret, alpha, 31 + trial);
    auto r = recon::LpReconstruct(oracle, queries, rng, options);
    if (!r.ok()) return out;
    out.ok = true;
    out.accuracy = recon::FractionAgree(r->estimate, secret);
    out.residual = r->decoder_residual;
  }
  return out;
}

// Replays one trial of the grid on the named backend, threading a
// warm-start basis across the same-shaped decodes of each n. Returns
// aggregate pivot work, pivot count, wall clock, and per-point residuals.
struct DuelLeg {
  uint64_t pivot_work = 0;
  uint64_t pivots = 0;
  double wall_seconds = 0.0;
  std::vector<double> residuals;
  bool ok = true;
};

DuelLeg RunDuelLeg(const std::string& backend) {
  DuelLeg leg;
  const uint64_t work_before = metrics::GetCounter("lp.pivot_work").value();
  const uint64_t pivots_before = metrics::GetCounter("lp.pivots").value();
  bench::WallTimer timer;
  for (size_t n : kNs) {
    LpBasis basis;  // reset per n: the decode LP shape changes with n
    recon::LpDecodeOptions options;
    options.backend = backend;
    options.basis = &basis;
    for (double c : kCs) {
      DecodePoint p = LpDecodeAt(n, c, /*trial=*/0, options);
      leg.ok = leg.ok && p.ok;
      leg.residuals.push_back(p.residual);
    }
  }
  leg.wall_seconds = timer.Seconds();
  leg.pivot_work = metrics::GetCounter("lp.pivot_work").value() - work_before;
  leg.pivots = metrics::GetCounter("lp.pivots").value() - pivots_before;
  return leg;
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_recon_lp", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E2: polynomial reconstruction by LP decoding (Theorem 1.1(ii))",
      "t = O(n) random subset queries with error alpha = c*sqrt(n) allow "
      "reconstruction of all but a small fraction of x; error >> sqrt(n) "
      "defeats it");

  TextTable table(
      {"n", "queries", "alpha/sqrt(n)", "acc(LP)", "acc(LSQ)"});

  double lp_small_noise = 0.0;
  double lp_big_noise = 1.0;
  double lsq_small_noise_big_n = 0.0;

  for (size_t n : kNs) {
    const size_t queries = 5 * n;
    LpBasis basis;  // warm-start slot shared by this n's decodes
    recon::LpDecodeOptions lp_options;
    lp_options.basis = &basis;
    for (double c : kCs) {
      double alpha = c * std::sqrt(static_cast<double>(n));
      RunningStats lp_acc;
      RunningStats lsq_acc;
      const size_t trials = 3;
      for (size_t t = 0; t < trials; ++t) {
        DecodePoint p = bench::TimedIteration(
            [&] { return LpDecodeAt(n, c, t, lp_options); });
        if (p.ok) lp_acc.Add(p.accuracy);
        // The LSQ decoder re-draws the same oracle/query stream.
        Rng rng(500 + 17 * t + n);
        auto secret = recon::RandomBits(n, rng);
        if (alpha == 0.0) {
          recon::ExactOracle lsq_oracle(secret);
          auto r2 = recon::LeastSquaresReconstruct(lsq_oracle, queries, rng);
          lsq_acc.Add(recon::FractionAgree(r2.estimate, secret));
        } else {
          recon::BoundedNoiseOracle lsq_oracle(secret, alpha, 51 + t);
          auto r2 = recon::LeastSquaresReconstruct(lsq_oracle, queries, rng);
          lsq_acc.Add(recon::FractionAgree(r2.estimate, secret));
        }
      }
      table.AddRow({StrFormat("%zu", n), StrFormat("%zu", queries),
                    StrFormat("%.2f", c), StrFormat("%.3f", lp_acc.mean()),
                    StrFormat("%.3f", lsq_acc.mean())});
      if (n == 64 && c == 0.25) {
        lp_small_noise = lp_acc.mean();
        lsq_small_noise_big_n = lsq_acc.mean();
      }
      if (n == 64 && c == 4.0) lp_big_noise = lp_acc.mean();
    }
  }
  // The LSQ decoder scales further; show n = 192 at the favorable noise.
  {
    const size_t n = 192;
    Rng rng(999);
    auto secret = recon::RandomBits(n, rng);
    recon::BoundedNoiseOracle oracle(
        secret, 0.25 * std::sqrt(static_cast<double>(n)), 7);
    auto r = recon::LeastSquaresReconstruct(oracle, 5 * n, rng);
    double acc = recon::FractionAgree(r.estimate, secret);
    table.AddRow({"192", "960", "0.25", "-", StrFormat("%.3f", acc)});
  }
  table.Print();

  // ---- Backend duel: dense tableau vs sparse revised simplex. ----
  DuelLeg dense = RunDuelLeg("dense");
  DuelLeg sparse = RunDuelLeg("sparse");
  const double work_ratio =
      sparse.pivot_work > 0
          ? static_cast<double>(dense.pivot_work) /
                static_cast<double>(sparse.pivot_work)
          : 0.0;
  double residual_gap = 0.0;
  for (size_t i = 0; i < dense.residuals.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(dense.residuals[i]));
    residual_gap = std::max(
        residual_gap,
        std::fabs(dense.residuals[i] - sparse.residuals[i]) / scale);
  }
  std::printf("\n-- backend duel (one trial of the grid per backend) --\n");
  TextTable duel({"backend", "pivots", "pivot work", "wall (s)"});
  duel.AddRow({"dense", StrFormat("%llu", (unsigned long long)dense.pivots),
               StrFormat("%llu", (unsigned long long)dense.pivot_work),
               StrFormat("%.3f", dense.wall_seconds)});
  duel.AddRow({"sparse", StrFormat("%llu", (unsigned long long)sparse.pivots),
               StrFormat("%llu", (unsigned long long)sparse.pivot_work),
               StrFormat("%.3f", sparse.wall_seconds)});
  duel.Print();
  std::printf("pivot-work ratio (dense/sparse): %.2fx   max objective "
              "disagreement: %.3g\n",
              work_ratio, residual_gap);

  bench::ShapeChecks checks;
  checks.CheckBetween(lp_small_noise, 0.93, 1.0,
                      "LP decoding at alpha = 0.25*sqrt(n), n=64");
  checks.CheckBetween(lsq_small_noise_big_n, 0.9, 1.0,
                      "LSQ decoding at alpha = 0.25*sqrt(n), n=64");
  checks.CheckBetween(lp_big_noise, 0.0, 0.9,
                      "LP decoding collapses at alpha = 4*sqrt(n)");
  checks.CheckGreater(lp_small_noise, lp_big_noise,
                      "crossover in c = alpha/sqrt(n) exists");
  checks.Check(dense.ok && sparse.ok, "both backends solved every duel LP");
  checks.CheckGreater(work_ratio, 10.0,
                      "sparse revised simplex does >=10x less pivot work");
  checks.CheckGreater(dense.wall_seconds, sparse.wall_seconds,
                      "sparse is strictly faster on wall clock");
  checks.CheckBetween(residual_gap, 0.0, 1e-6,
                      "backends agree on every LP objective");
  return bench::FinishBench(ctx, "E2", checks);
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) {
  return pso::Run(argc, argv);
}
