// E2 — Theorem 1.1(ii): polynomially many random subset queries with error
// alpha = c*sqrt(n) admit reconstruction by LP decoding. Series: accuracy
// vs alpha/sqrt(n) for the LP and least-squares decoders across n; the
// crossover from near-perfect to failed reconstruction sits at
// alpha/sqrt(n) of order 1.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "recon/attacks.h"
#include "recon/oracle.h"

namespace pso {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_recon_lp", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E2: polynomial reconstruction by LP decoding (Theorem 1.1(ii))",
      "t = O(n) random subset queries with error alpha = c*sqrt(n) allow "
      "reconstruction of all but a small fraction of x; error >> sqrt(n) "
      "defeats it");

  TextTable table(
      {"n", "queries", "alpha/sqrt(n)", "acc(LP)", "acc(LSQ)"});

  double lp_small_noise = 0.0;
  double lp_big_noise = 1.0;
  double lsq_small_noise_big_n = 0.0;

  for (size_t n : {32, 64}) {
    const size_t queries = 5 * n;
    for (double c : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
      double alpha = c * std::sqrt(static_cast<double>(n));
      RunningStats lp_acc;
      RunningStats lsq_acc;
      const size_t trials = 3;
      for (size_t t = 0; t < trials; ++t) {
        Rng rng(500 + 17 * t + n);
        auto secret = recon::RandomBits(n, rng);
        if (alpha == 0.0) {
          recon::ExactOracle lp_oracle(secret);
          auto r = recon::LpReconstruct(lp_oracle, queries, rng);
          if (r.ok()) lp_acc.Add(recon::FractionAgree(r->estimate, secret));
          recon::ExactOracle lsq_oracle(secret);
          auto r2 = recon::LeastSquaresReconstruct(lsq_oracle, queries, rng);
          lsq_acc.Add(recon::FractionAgree(r2.estimate, secret));
        } else {
          recon::BoundedNoiseOracle lp_oracle(secret, alpha, 31 + t);
          auto r = recon::LpReconstruct(lp_oracle, queries, rng);
          if (r.ok()) lp_acc.Add(recon::FractionAgree(r->estimate, secret));
          recon::BoundedNoiseOracle lsq_oracle(secret, alpha, 51 + t);
          auto r2 = recon::LeastSquaresReconstruct(lsq_oracle, queries, rng);
          lsq_acc.Add(recon::FractionAgree(r2.estimate, secret));
        }
      }
      table.AddRow({StrFormat("%zu", n), StrFormat("%zu", queries),
                    StrFormat("%.2f", c), StrFormat("%.3f", lp_acc.mean()),
                    StrFormat("%.3f", lsq_acc.mean())});
      if (n == 64 && c == 0.25) {
        lp_small_noise = lp_acc.mean();
        lsq_small_noise_big_n = lsq_acc.mean();
      }
      if (n == 64 && c == 4.0) lp_big_noise = lp_acc.mean();
    }
  }
  // The LSQ decoder scales further; show n = 192 at the favorable noise.
  {
    const size_t n = 192;
    Rng rng(999);
    auto secret = recon::RandomBits(n, rng);
    recon::BoundedNoiseOracle oracle(
        secret, 0.25 * std::sqrt(static_cast<double>(n)), 7);
    auto r = recon::LeastSquaresReconstruct(oracle, 5 * n, rng);
    double acc = recon::FractionAgree(r.estimate, secret);
    table.AddRow({"192", "960", "0.25", "-", StrFormat("%.3f", acc)});
  }
  table.Print();

  bench::ShapeChecks checks;
  checks.CheckBetween(lp_small_noise, 0.93, 1.0,
                      "LP decoding at alpha = 0.25*sqrt(n), n=64");
  checks.CheckBetween(lsq_small_noise_big_n, 0.9, 1.0,
                      "LSQ decoding at alpha = 0.25*sqrt(n), n=64");
  checks.CheckBetween(lp_big_noise, 0.0, 0.9,
                      "LP decoding collapses at alpha = 4*sqrt(n)");
  checks.CheckGreater(lp_small_noise, lp_big_noise,
                      "crossover in c = alpha/sqrt(n) exists");
  return bench::FinishBench(ctx, "E2", checks);
}

}  // namespace
}  // namespace pso

int main(int argc, char** argv) {
  return pso::Run(argc, argv);
}
