// E9 — the 2010 Decennial reconstruction narrative (Section 1): block
// tables are solved back into microdata, reconstructed records are matched
// against a commercial database, and the confirmed re-identification rate
// dwarfs the 0.003% pre-2010 disclosure-risk estimate. The DP-protected
// tabulation (the post-2020 posture) collapses the attack. Rows: the same
// statistics the Bureau reported — blocks solved exactly, persons
// reconstructed, putative and confirmed re-identifications.
//
// A second "SAT backend duel" leg pits the DPLL baseline against the CDCL
// engine on the same census encodings, in the style of bench_recon_lp's
// LP backend duel. The duel set mixes exact-table blocks (both backends
// solve them by propagation) with noise-perturbed infeasible blocks whose
// tables demand more persons in one age bucket than the sex-by-age rows
// can supply. Refuting those requires learning from conflicts: CDCL
// derives the contradiction in a few thousand decisions while
// chronological DPLL wanders until its decision budget runs out. The
// duel's shape checks are the performance contract of the CDCL engine.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "census/reidentify.h"
#include "census/sat_reconstruct.h"
#include "tools/flags.h"

namespace pso::census {
namespace {

struct PipelineOutcome {
  ReconstructionReport recon;
  ReidentificationReport reid;
};

// Shared decision budget for every duel block. CDCL refutes the largest
// perturbed block in ~7.5k decisions (deterministic), so 10k is safe
// headroom; DPLL burns the full budget on every perturbed block.
constexpr size_t kDuelBudget = 10000;
constexpr size_t kDuelPerturbedSizes[] = {4, 5, 6};

// Makes exact tables infeasible under noise_slack = 1: move one person of
// age-count mass from each of `delta` distinct source ages into the middle
// age of an empty five-year bucket. The receiving by_age cell then demands
// at least delta - slack persons, but the untouched by_sex_age_bucket rows
// cap that bucket at 2 * slack — a contradiction spread across cardinality
// constraints that only conflict analysis localizes quickly.
bool PerturbOverloadedBucket(BlockTables& t, int64_t delta) {
  t.noise_slack = 1;
  int target_bucket = -1;
  for (int bkt = 0; bkt < static_cast<int>(kAgeBuckets); ++bkt) {
    int64_t in_bucket = 0;
    for (int a = bkt * 5; a < bkt * 5 + 5; ++a) in_bucket += t.by_age[a];
    if (in_bucket == 0) {
      target_bucket = bkt;
      break;
    }
  }
  if (target_bucket < 0) return false;
  const int target = target_bucket * 5 + 2;
  int64_t moved = 0;
  for (int a = 0; a <= kMaxAge && moved < delta; ++a) {
    if (a / 5 == target_bucket) continue;
    if (t.by_age[a] > 0) {
      t.by_age[a] -= 1;
      t.by_age[target] += 1;
      ++moved;
    }
  }
  return moved == delta;
}

// Per-block duel outcome: decided SAT, decided UNSAT, or budget exhausted.
enum class DuelOutcome { kSat, kUnsat, kExhausted, kError };

struct SatDuelLeg {
  std::vector<DuelOutcome> outcomes;
  std::vector<size_t> block_decisions;
  size_t solved = 0;     // blocks decided (either way) within the budget
  size_t exhausted = 0;  // blocks where the decision budget ran out
  size_t decisions = 0;  // aggregate, including budget spent when exhausted
  size_t conflicts = 0;
  double wall_seconds = 0.0;
};

SatDuelLeg RunSatDuelLeg(const std::string& backend,
                         const std::vector<BlockTables>& duel_tables) {
  SatDuelLeg leg;
  bench::WallTimer timer;
  for (const BlockTables& t : duel_tables) {
    // Per-block solve latency lands in the bench.main_loop histogram —
    // the per-block solve-time distribution, not just one aggregate.
    auto r = bench::TimedIteration(
        [&] { return ReconstructBlockSat(t, kDuelBudget, backend); });
    if (!r.ok()) {
      leg.outcomes.push_back(DuelOutcome::kError);
      leg.block_decisions.push_back(0);
      continue;
    }
    if (r->budget_exhausted) {
      leg.outcomes.push_back(DuelOutcome::kExhausted);
      ++leg.exhausted;
    } else {
      leg.outcomes.push_back(r->satisfiable ? DuelOutcome::kSat
                                            : DuelOutcome::kUnsat);
      ++leg.solved;
    }
    leg.block_decisions.push_back(r->decisions);
    leg.decisions += r->decisions;
    leg.conflicts += r->conflicts;
  }
  leg.wall_seconds = timer.Seconds();
  return leg;
}

const char* OutcomeName(DuelOutcome o) {
  switch (o) {
    case DuelOutcome::kSat:
      return "SAT";
    case DuelOutcome::kUnsat:
      return "UNSAT";
    case DuelOutcome::kExhausted:
      return "exhausted";
    case DuelOutcome::kError:
      return "error";
  }
  return "?";
}

PipelineOutcome RunPipeline(const Population& pop,
                            const std::vector<BlockTables>& tables,
                            const std::vector<CommercialEntry>& commercial,
                            const ReconstructOptions& opts) {
  std::vector<BlockReconstruction> per_block;
  PipelineOutcome out;
  out.recon = ReconstructPopulation(pop, tables, opts, &per_block);
  out.reid = Reidentify(pop, per_block, commercial, /*age_tolerance=*/1,
                        opts.pool);
  return out;
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_census_reconstruction", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E9: reconstruction-abetted re-identification of census tables",
      "2010-style exact tables: most blocks solved exactly, most of the "
      "population reconstructed, confirmed re-identification orders of "
      "magnitude above the 0.003% prior estimate; DP tables break the "
      "attack");

  PopulationOptions popts;
  popts.num_blocks = 150;
  popts.min_block_size = 2;
  popts.max_block_size = 9;
  Rng rng(0x2010);
  Population pop = GeneratePopulation(popts, rng);
  std::printf("population: %zu persons in %zu blocks (size %zu..%zu)\n\n",
              pop.total_persons, pop.blocks.size(), popts.min_block_size,
              popts.max_block_size);

  CommercialOptions copts;  // 60% coverage, 10% age errors
  Rng crng(0xC0ffee);
  auto commercial = SimulateCommercialDatabase(pop, copts, crng);

  std::vector<BlockTables> exact;
  exact.reserve(pop.blocks.size());
  for (const Block& b : pop.blocks) exact.push_back(Tabulate(b));

  ReconstructOptions ropts;
  ropts.max_solutions = 64;
  ropts.max_nodes = 500000;
  ropts.pool = par.get();
  PipelineOutcome swdb = RunPipeline(pop, exact, commercial, ropts);

  // Wall-clock comparison: the same exact-table pipeline, serial.
  double parallel_s;
  double serial_s;
  {
    bench::WallTimer timer;
    ReconstructOptions serial_opts = ropts;
    serial_opts.pool = nullptr;
    RunPipeline(pop, exact, commercial, serial_opts);
    serial_s = timer.Seconds();
    timer.Reset();
    RunPipeline(pop, exact, commercial, ropts);
    parallel_s = timer.Seconds();
  }

  TextTable table({"release", "blocks exact", "persons exact",
                   "putative reid", "confirmed reid", "precision"});
  auto add_row = [&](const std::string& name, const PipelineOutcome& o) {
    table.AddRow({name,
                  StrFormat("%.1f%%", 100.0 * o.recon.block_unique_fraction()),
                  StrFormat("%.1f%%", 100.0 * o.recon.person_exact_fraction()),
                  StrFormat("%.2f%%", 100.0 * o.reid.putative_rate()),
                  StrFormat("%.2f%%", 100.0 * o.reid.confirmed_rate()),
                  StrFormat("%.2f", o.reid.precision())});
  };
  add_row("exact tables (2010 SF1-style)", swdb);

  std::vector<double> dp_confirmed;
  ReconstructOptions dp_ropts;
  dp_ropts.max_solutions = 16;
  dp_ropts.max_nodes = 150000;
  dp_ropts.pool = par.get();
  for (double eps : {2.0, 0.5}) {
    Rng dprng(0xD0 + static_cast<uint64_t>(eps * 10));
    std::vector<BlockTables> noisy;
    noisy.reserve(pop.blocks.size());
    for (const Block& b : pop.blocks) {
      noisy.push_back(TabulateDp(b, eps, dprng));
    }
    PipelineOutcome o = RunPipeline(pop, noisy, commercial, dp_ropts);
    add_row(StrFormat("DP tables (eps=%.1f)", eps), o);
    dp_confirmed.push_back(o.reid.confirmed_rate());
  }
  table.Print();

  // Solver cross-validation: both SAT back-ends (DPLL and CDCL, over the
  // same sequential-counter cardinality encodings) must agree with the CSP
  // engine blockwise.
  size_t sat_checked = 0;
  size_t sat_agree = 0;
  for (const std::string& backend : {std::string("dpll"),
                                     std::string("cdcl")}) {
    for (size_t b = 0; b < std::min<size_t>(pop.blocks.size(), 40); ++b) {
      auto sat = ReconstructBlockSat(exact[b], /*max_decisions=*/500000,
                                     backend);
      if (!sat.ok()) continue;
      ++sat_checked;
      // Agreement = SAT finds a solution exactly when CSP did, and its
      // solution satisfies the same exact tables (checked inside the test
      // suite; here: satisfiability + size).
      if (sat->satisfiable &&
          sat->reconstructed.size() == pop.blocks[b].persons.size()) {
        ++sat_agree;
      }
    }
  }
  std::printf(
      "\nSAT back-end cross-check: %zu/%zu block solves reconstructed "
      "consistently by the cardinality-encoding pipeline (dpll + cdcl).\n",
      sat_agree, sat_checked);

  // ---- SAT backend duel: chronological DPLL vs conflict-driven CDCL. ----
  // Duel set: a handful of exact-table blocks (propagation-complete, both
  // backends decide them in a few decisions) plus one perturbed infeasible
  // block per escalating size. Same decision budget for every block and
  // both backends.
  std::vector<BlockTables> duel_tables;
  std::vector<std::string> duel_labels;
  for (size_t b = 0; b < std::min<size_t>(pop.blocks.size(), 4); ++b) {
    duel_tables.push_back(exact[b]);
    duel_labels.push_back(
        StrFormat("exact block %zu (%zu persons)", b,
                  pop.blocks[b].persons.size()));
  }
  for (size_t size : kDuelPerturbedSizes) {
    PopulationOptions single;
    single.num_blocks = 1;
    single.min_block_size = size;
    single.max_block_size = size;
    Rng duel_rng(0x2021);
    Population one = GeneratePopulation(single, duel_rng);
    BlockTables t = Tabulate(one.blocks[0]);
    if (!PerturbOverloadedBucket(t, /*delta=*/4)) continue;
    duel_tables.push_back(t);
    duel_labels.push_back(
        StrFormat("perturbed block (%zu persons, infeasible)", size));
  }
  SatDuelLeg dpll = RunSatDuelLeg("dpll", duel_tables);
  SatDuelLeg cdcl = RunSatDuelLeg("cdcl", duel_tables);

  std::printf("\n-- SAT backend duel (decision budget %zu per block) --\n",
              kDuelBudget);
  TextTable duel({"block", "dpll", "dpll dec", "cdcl", "cdcl dec"});
  bool duel_status_agrees = true;
  size_t dpll_solved_cdcl_too = 0;
  for (size_t i = 0; i < duel_tables.size(); ++i) {
    duel.AddRow({duel_labels[i], OutcomeName(dpll.outcomes[i]),
                 StrFormat("%zu", dpll.block_decisions[i]),
                 OutcomeName(cdcl.outcomes[i]),
                 StrFormat("%zu", cdcl.block_decisions[i])});
    const bool dpll_decided = dpll.outcomes[i] == DuelOutcome::kSat ||
                              dpll.outcomes[i] == DuelOutcome::kUnsat;
    const bool cdcl_decided = cdcl.outcomes[i] == DuelOutcome::kSat ||
                              cdcl.outcomes[i] == DuelOutcome::kUnsat;
    if (dpll_decided && cdcl_decided &&
        dpll.outcomes[i] != cdcl.outcomes[i]) {
      duel_status_agrees = false;
    }
    if (dpll_decided && cdcl_decided) ++dpll_solved_cdcl_too;
  }
  duel.AddRow({"aggregate",
               StrFormat("%zu/%zu solved", dpll.solved, duel_tables.size()),
               StrFormat("%zu", dpll.decisions),
               StrFormat("%zu/%zu solved", cdcl.solved, duel_tables.size()),
               StrFormat("%zu", cdcl.decisions)});
  duel.Print();
  std::printf(
      "duel wall clock: dpll %.2fs (%zu conflicts), cdcl %.2fs "
      "(%zu conflicts)\n",
      dpll.wall_seconds, dpll.conflicts, cdcl.wall_seconds, cdcl.conflicts);

  bench::ReportSpeedup("census reconstruction + linkage, 150 blocks",
                       serial_s, parallel_s, par.threads);

  const double prior_estimate = 0.00003;  // the 0.003% pre-2010 figure
  std::printf(
      "\nconfirmed re-identification vs prior risk estimate (0.003%%): "
      "x%.0f\n",
      swdb.reid.confirmed_rate() / prior_estimate);

  bench::ShapeChecks checks;
  checks.CheckBetween(swdb.recon.block_unique_fraction(), 0.45, 1.0,
                      "most blocks solved exactly from exact tables");
  checks.CheckBetween(swdb.recon.person_exact_fraction(), 0.6, 1.0,
                      "majority of population reconstructed exactly "
                      "(paper: 71% with age to the year)");
  checks.CheckGreater(swdb.reid.confirmed_rate(), 100.0 * prior_estimate,
                      "confirmed reid dwarfs the 0.003% prior (paper: "
                      "x~4500)");
  checks.CheckGreater(swdb.reid.precision(), 0.5,
                      "most putative claims confirm");
  checks.CheckGreater(swdb.reid.confirmed_rate(), 4.0 * dp_confirmed[1],
                      "strong DP tables collapse confirmed reid");
  checks.CheckGreater(dp_confirmed[0] + 0.02, dp_confirmed[1],
                      "looser eps leaks at least as much as tighter eps");
  checks.Check(sat_checked > 0 && sat_agree == sat_checked,
               "both SAT back-ends agree with the CSP engine on every "
               "checked block");
  checks.Check(cdcl.exhausted == 0,
               "CDCL decides every duel block within the budget");
  checks.CheckGreater(static_cast<double>(dpll.exhausted), 0.5,
                      "DPLL exhausts its decision budget on at least one "
                      "duel block size");
  checks.Check(dpll_solved_cdcl_too == dpll.solved,
               "CDCL solves every duel block the DPLL baseline solves");
  checks.CheckGreater(static_cast<double>(dpll.decisions),
                      static_cast<double>(cdcl.decisions),
                      "CDCL spends strictly fewer decisions in aggregate");
  checks.Check(duel_status_agrees,
               "backends agree on satisfiability wherever both decide");
  return bench::FinishBench(ctx, "E9", checks, par.get());
}

}  // namespace
}  // namespace pso::census

int main(int argc, char** argv) { return pso::census::Run(argc, argv); }
