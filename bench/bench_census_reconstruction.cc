// E9 — the 2010 Decennial reconstruction narrative (Section 1): block
// tables are solved back into microdata, reconstructed records are matched
// against a commercial database, and the confirmed re-identification rate
// dwarfs the 0.003% pre-2010 disclosure-risk estimate. The DP-protected
// tabulation (the post-2020 posture) collapses the attack. Rows: the same
// statistics the Bureau reported — blocks solved exactly, persons
// reconstructed, putative and confirmed re-identifications.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "census/reidentify.h"
#include "census/sat_reconstruct.h"
#include "tools/flags.h"

namespace pso::census {
namespace {

struct PipelineOutcome {
  ReconstructionReport recon;
  ReidentificationReport reid;
};

PipelineOutcome RunPipeline(const Population& pop,
                            const std::vector<BlockTables>& tables,
                            const std::vector<CommercialEntry>& commercial,
                            const ReconstructOptions& opts) {
  std::vector<BlockReconstruction> per_block;
  PipelineOutcome out;
  out.recon = ReconstructPopulation(pop, tables, opts, &per_block);
  out.reid = Reidentify(pop, per_block, commercial, /*age_tolerance=*/1,
                        opts.pool);
  return out;
}

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_census_reconstruction", argc, argv);
  tools::Flags flags(argc, argv);
  bench::ParallelConfig par = bench::MakeParallelConfig(flags.GetThreads());
  bench::Banner(
      "E9: reconstruction-abetted re-identification of census tables",
      "2010-style exact tables: most blocks solved exactly, most of the "
      "population reconstructed, confirmed re-identification orders of "
      "magnitude above the 0.003% prior estimate; DP tables break the "
      "attack");

  PopulationOptions popts;
  popts.num_blocks = 150;
  popts.min_block_size = 2;
  popts.max_block_size = 9;
  Rng rng(0x2010);
  Population pop = GeneratePopulation(popts, rng);
  std::printf("population: %zu persons in %zu blocks (size %zu..%zu)\n\n",
              pop.total_persons, pop.blocks.size(), popts.min_block_size,
              popts.max_block_size);

  CommercialOptions copts;  // 60% coverage, 10% age errors
  Rng crng(0xC0ffee);
  auto commercial = SimulateCommercialDatabase(pop, copts, crng);

  std::vector<BlockTables> exact;
  exact.reserve(pop.blocks.size());
  for (const Block& b : pop.blocks) exact.push_back(Tabulate(b));

  ReconstructOptions ropts;
  ropts.max_solutions = 64;
  ropts.max_nodes = 500000;
  ropts.pool = par.get();
  PipelineOutcome swdb = RunPipeline(pop, exact, commercial, ropts);

  // Wall-clock comparison: the same exact-table pipeline, serial.
  double parallel_s;
  double serial_s;
  {
    bench::WallTimer timer;
    ReconstructOptions serial_opts = ropts;
    serial_opts.pool = nullptr;
    RunPipeline(pop, exact, commercial, serial_opts);
    serial_s = timer.Seconds();
    timer.Reset();
    RunPipeline(pop, exact, commercial, ropts);
    parallel_s = timer.Seconds();
  }

  TextTable table({"release", "blocks exact", "persons exact",
                   "putative reid", "confirmed reid", "precision"});
  auto add_row = [&](const std::string& name, const PipelineOutcome& o) {
    table.AddRow({name,
                  StrFormat("%.1f%%", 100.0 * o.recon.block_unique_fraction()),
                  StrFormat("%.1f%%", 100.0 * o.recon.person_exact_fraction()),
                  StrFormat("%.2f%%", 100.0 * o.reid.putative_rate()),
                  StrFormat("%.2f%%", 100.0 * o.reid.confirmed_rate()),
                  StrFormat("%.2f", o.reid.precision())});
  };
  add_row("exact tables (2010 SF1-style)", swdb);

  std::vector<double> dp_confirmed;
  ReconstructOptions dp_ropts;
  dp_ropts.max_solutions = 16;
  dp_ropts.max_nodes = 150000;
  dp_ropts.pool = par.get();
  for (double eps : {2.0, 0.5}) {
    Rng dprng(0xD0 + static_cast<uint64_t>(eps * 10));
    std::vector<BlockTables> noisy;
    noisy.reserve(pop.blocks.size());
    for (const Block& b : pop.blocks) {
      noisy.push_back(TabulateDp(b, eps, dprng));
    }
    PipelineOutcome o = RunPipeline(pop, noisy, commercial, dp_ropts);
    add_row(StrFormat("DP tables (eps=%.1f)", eps), o);
    dp_confirmed.push_back(o.reid.confirmed_rate());
  }
  table.Print();

  // Solver cross-validation: the SAT back-end (DPLL + sequential-counter
  // cardinality encodings) must agree with the CSP engine blockwise.
  size_t sat_checked = 0;
  size_t sat_agree = 0;
  for (size_t b = 0; b < std::min<size_t>(pop.blocks.size(), 40); ++b) {
    auto sat = ReconstructBlockSat(exact[b], /*max_decisions=*/500000);
    if (!sat.ok()) continue;
    ++sat_checked;
    // Agreement = SAT finds a solution exactly when CSP did, and its
    // solution satisfies the same exact tables (checked inside the test
    // suite; here: satisfiability + size).
    if (sat->satisfiable &&
        sat->reconstructed.size() == pop.blocks[b].persons.size()) {
      ++sat_agree;
    }
  }
  std::printf(
      "\nSAT back-end cross-check: %zu/%zu blocks reconstructed "
      "consistently by the DPLL + cardinality-encoding pipeline.\n",
      sat_agree, sat_checked);

  bench::ReportSpeedup("census reconstruction + linkage, 150 blocks",
                       serial_s, parallel_s, par.threads);

  const double prior_estimate = 0.00003;  // the 0.003% pre-2010 figure
  std::printf(
      "\nconfirmed re-identification vs prior risk estimate (0.003%%): "
      "x%.0f\n",
      swdb.reid.confirmed_rate() / prior_estimate);

  bench::ShapeChecks checks;
  checks.CheckBetween(swdb.recon.block_unique_fraction(), 0.45, 1.0,
                      "most blocks solved exactly from exact tables");
  checks.CheckBetween(swdb.recon.person_exact_fraction(), 0.6, 1.0,
                      "majority of population reconstructed exactly "
                      "(paper: 71% with age to the year)");
  checks.CheckGreater(swdb.reid.confirmed_rate(), 100.0 * prior_estimate,
                      "confirmed reid dwarfs the 0.003% prior (paper: "
                      "x~4500)");
  checks.CheckGreater(swdb.reid.precision(), 0.5,
                      "most putative claims confirm");
  checks.CheckGreater(swdb.reid.confirmed_rate(), 4.0 * dp_confirmed[1],
                      "strong DP tables collapse confirmed reid");
  checks.CheckGreater(dp_confirmed[0] + 0.02, dp_confirmed[1],
                      "looser eps leaks at least as much as tighter eps");
  checks.Check(sat_checked > 0 && sat_agree == sat_checked,
               "SAT back-end agrees with the CSP engine on every checked "
               "block");
  return bench::FinishBench(ctx, "E9", checks, par.get());
}

}  // namespace
}  // namespace pso::census

int main(int argc, char** argv) { return pso::census::Run(argc, argv); }
