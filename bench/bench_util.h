// Shared helpers for the experiment harnesses (bench_*).
//
// Each harness regenerates one experiment from DESIGN.md's index: it
// prints the series/rows the paper's claim corresponds to and then runs
// "shape checks" — assertions about who wins, by what rough factor, and
// where crossovers fall. Absolute numbers differ from the paper (our
// substrate is a simulator); shapes must hold.

#ifndef PSO_BENCH_BENCH_UTIL_H_
#define PSO_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/str_util.h"

namespace pso::bench {

/// Collects named pass/fail assertions and renders a summary. The process
/// exits nonzero if any shape check failed, so CI catches regressions.
class ShapeChecks {
 public:
  /// Records one check.
  void Check(bool ok, const std::string& description) {
    results_.emplace_back(ok, description);
    if (!ok) ++failures_;
  }

  /// Convenience: value within [lo, hi].
  void CheckBetween(double value, double lo, double hi,
                    const std::string& what) {
    Check(value >= lo && value <= hi,
          StrFormat("%s = %.4f in [%.4f, %.4f]", what.c_str(), value, lo,
                    hi));
  }

  /// Convenience: a > b (who wins).
  void CheckGreater(double a, double b, const std::string& what) {
    Check(a > b, StrFormat("%s (%.4f > %.4f)", what.c_str(), a, b));
  }

  /// Prints the verdicts; returns the exit code (0 iff all passed).
  int Finish(const std::string& experiment) const {
    std::printf("\n-- shape checks: %s --\n", experiment.c_str());
    for (const auto& [ok, what] : results_) {
      std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    }
    std::printf("%s: %zu/%zu shape checks passed\n", experiment.c_str(),
                results_.size() - failures_, results_.size());
    return failures_ == 0 ? 0 : 1;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  size_t failures_ = 0;
};

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==========================================================\n");
}

/// Monotonic wall-clock stopwatch for the serial-vs-parallel reports.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Parallel-run configuration shared by the harnesses: worker pool (null
/// when running serially) and the requested thread count.
struct ParallelConfig {
  std::unique_ptr<ThreadPool> pool;  ///< Null at threads == 1.
  size_t threads = 1;

  ThreadPool* get() const { return pool.get(); }
};

/// Builds the pool for `threads` workers (0 = hardware concurrency);
/// 1 runs serially on the calling thread — exact legacy behavior.
inline ParallelConfig MakeParallelConfig(size_t threads) {
  ParallelConfig cfg;
  cfg.threads = threads == 0 ? ThreadPool::HardwareThreads() : threads;
  if (cfg.threads > 1) cfg.pool = std::make_unique<ThreadPool>(cfg.threads);
  return cfg;
}

/// Prints the serial-vs-parallel wall-clock comparison for one workload.
/// Determinism makes the two runs produce identical numbers, so the only
/// difference worth reporting is time. Speedup is informational: on a
/// single-core host (or threads == 1) there is nothing to win.
inline void ReportSpeedup(const std::string& what, double serial_seconds,
                          double parallel_seconds, size_t threads) {
  double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf(
      "\n-- wall clock: %s --\n  serial (1 thread): %.3fs   parallel "
      "(%zu threads): %.3fs   speedup: %.2fx\n",
      what.c_str(), serial_seconds, threads, parallel_seconds, speedup);
}

}  // namespace pso::bench

#endif  // PSO_BENCH_BENCH_UTIL_H_
