// Shared helpers for the experiment harnesses (bench_*).
//
// Each harness regenerates one experiment from DESIGN.md's index: it
// prints the series/rows the paper's claim corresponds to and then runs
// "shape checks" — assertions about who wins, by what rough factor, and
// where crossovers fall. Absolute numbers differ from the paper (our
// substrate is a simulator); shapes must hold.

#ifndef PSO_BENCH_BENCH_UTIL_H_
#define PSO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace pso::bench {

/// Collects named pass/fail assertions and renders a summary. The process
/// exits nonzero if any shape check failed, so CI catches regressions.
class ShapeChecks {
 public:
  /// Records one check.
  void Check(bool ok, const std::string& description) {
    results_.emplace_back(ok, description);
    if (!ok) ++failures_;
  }

  /// Convenience: value within [lo, hi].
  void CheckBetween(double value, double lo, double hi,
                    const std::string& what) {
    Check(value >= lo && value <= hi,
          StrFormat("%s = %.4f in [%.4f, %.4f]", what.c_str(), value, lo,
                    hi));
  }

  /// Convenience: a > b (who wins).
  void CheckGreater(double a, double b, const std::string& what) {
    Check(a > b, StrFormat("%s (%.4f > %.4f)", what.c_str(), a, b));
  }

  /// Prints the verdicts; returns the exit code (0 iff all passed).
  int Finish(const std::string& experiment) const {
    std::printf("\n-- shape checks: %s --\n", experiment.c_str());
    for (const auto& [ok, what] : results_) {
      std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    }
    std::printf("%s: %zu/%zu shape checks passed\n", experiment.c_str(),
                results_.size() - failures_, results_.size());
    return failures_ == 0 ? 0 : 1;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  size_t failures_ = 0;
};

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==========================================================\n");
}

}  // namespace pso::bench

#endif  // PSO_BENCH_BENCH_UTIL_H_
