// Shared helpers for the experiment harnesses (bench_*).
//
// Each harness regenerates one experiment from DESIGN.md's index: it
// prints the series/rows the paper's claim corresponds to and then runs
// "shape checks" — assertions about who wins, by what rough factor, and
// where crossovers fall. Absolute numbers differ from the paper (our
// substrate is a simulator); shapes must hold.

#ifndef PSO_BENCH_BENCH_UTIL_H_
#define PSO_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/progress.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "solver/lp_backend.h"
#include "solver/sat_backend.h"
#include "tools/flags.h"

namespace pso::bench {

/// Collects named pass/fail assertions and renders a summary. The process
/// exits nonzero if any shape check failed, so CI catches regressions.
class ShapeChecks {
 public:
  /// Records one check.
  void Check(bool ok, const std::string& description) {
    results_.emplace_back(ok, description);
    if (!ok) ++failures_;
  }

  /// Convenience: value within [lo, hi].
  void CheckBetween(double value, double lo, double hi,
                    const std::string& what) {
    Check(value >= lo && value <= hi,
          StrFormat("%s = %.4f in [%.4f, %.4f]", what.c_str(), value, lo,
                    hi));
  }

  /// Convenience: a > b (who wins).
  void CheckGreater(double a, double b, const std::string& what) {
    Check(a > b, StrFormat("%s (%.4f > %.4f)", what.c_str(), a, b));
  }

  /// Prints the verdicts; returns the exit code (0 iff all passed).
  int Finish(const std::string& experiment) const {
    std::printf("\n-- shape checks: %s --\n", experiment.c_str());
    for (const auto& [ok, what] : results_) {
      std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    }
    std::printf("%s: %zu/%zu shape checks passed\n", experiment.c_str(),
                results_.size() - failures_, results_.size());
    return failures_ == 0 ? 0 : 1;
  }

  /// The recorded (pass, description) verdicts, in insertion order.
  const std::vector<std::pair<bool, std::string>>& results() const {
    return results_;
  }
  size_t failures() const { return failures_; }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  size_t failures_ = 0;
};

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==========================================================\n");
}

/// Monotonic wall-clock stopwatch for the serial-vs-parallel reports.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Parallel-run configuration shared by the harnesses: worker pool (null
/// when running serially) and the requested thread count.
struct ParallelConfig {
  std::unique_ptr<ThreadPool> pool;  ///< Null at threads == 1.
  size_t threads = 1;

  ThreadPool* get() const { return pool.get(); }
};

/// Builds the pool for `threads` workers (0 = hardware concurrency);
/// 1 runs serially on the calling thread — exact legacy behavior.
inline ParallelConfig MakeParallelConfig(size_t threads) {
  ParallelConfig cfg;
  cfg.threads = threads == 0 ? ThreadPool::HardwareThreads() : threads;
  if (cfg.threads > 1) cfg.pool = std::make_unique<ThreadPool>(cfg.threads);
  return cfg;
}

/// Prints the serial-vs-parallel wall-clock comparison for one workload.
/// Determinism makes the two runs produce identical numbers, so the only
/// difference worth reporting is time. Speedup is informational: on a
/// single-core host (or threads == 1) there is nothing to win.
inline void ReportSpeedup(const std::string& what, double serial_seconds,
                          double parallel_seconds, size_t threads) {
  double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf(
      "\n-- wall clock: %s --\n  serial (1 thread): %.3fs   parallel "
      "(%zu threads): %.3fs   speedup: %.2fx\n",
      what.c_str(), serial_seconds, threads, parallel_seconds, speedup);
}

/// Per-run reporting state shared by every harness: parsed CLI flags, the
/// run's wall-clock stopwatch (started at construction), and the --json /
/// --trace destinations. Create one at the top of Run() via
/// MakeBenchContext.
struct BenchContext {
  std::string bench_name;  ///< Binary name, e.g. "bench_recon_lp".
  std::string json_path;   ///< Empty when --json was not given.
  std::string trace_path;  ///< Empty when --trace was not given.
  size_t threads = 1;       ///< Resolved --threads value.
  std::string lp_backend;   ///< Resolved --lp-backend (process default).
  std::string sat_backend;  ///< Resolved --sat-backend (process default).
  int64_t watchdog_ms = 0;  ///< Resolved --solver-watchdog-ms (0 = off).
  WallTimer timer;          ///< Wall clock for the whole run.
};

/// Parses the standard harness flags (--json <path>, --threads N,
/// --trace <path>, --log-level {debug,info,warn,error},
/// --lp-backend {dense,sparse}, --sat-backend {dpll,cdcl},
/// --solver-watchdog-ms N), starts the run stopwatch, arms the stall
/// watchdog when requested, and — when --trace was given — enables the
/// global trace collector. Unknown or malformed flags print usage to
/// stderr and exit non-zero.
inline BenchContext MakeBenchContext(const std::string& bench_name, int argc,
                                     char** argv) {
  tools::Flags flags(argc, argv);
  const std::vector<tools::FlagSpec> specs = {
      {"json", tools::FlagSpec::Type::kString},
      {"threads", tools::FlagSpec::Type::kInt},
      {"trace", tools::FlagSpec::Type::kString},
      {"log-level", tools::FlagSpec::Type::kString},
      {"lp-backend", tools::FlagSpec::Type::kString},
      {"sat-backend", tools::FlagSpec::Type::kString},
      {"solver-watchdog-ms", tools::FlagSpec::Type::kInt},
  };
  std::vector<std::string> errors;
  tools::ValidateFlags(flags, specs, &errors);
  // bench_micro forwards --benchmark_* to google-benchmark; those are not
  // ours to reject.
  for (size_t i = errors.size(); i > 0; --i) {
    if (errors[i - 1].find("--benchmark_") != std::string::npos) {
      errors.erase(errors.begin() + static_cast<ptrdiff_t>(i - 1));
    }
  }
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s: %s\n", bench_name.c_str(), e.c_str());
    }
    std::fprintf(stderr,
                 "usage: %s [--json FILE] [--threads N] [--trace FILE] "
                 "[--log-level debug|info|warn|error] "
                 "[--lp-backend dense|sparse] [--sat-backend dpll|cdcl] "
                 "[--solver-watchdog-ms N]\n",
                 bench_name.c_str());
    std::exit(2);
  }
  const std::string backend = flags.GetString("lp-backend", "");
  if (!backend.empty()) {
    Status set = SetDefaultLpBackend(backend);
    if (!set.ok()) {
      std::fprintf(stderr, "%s: %s\n", bench_name.c_str(),
                   set.ToString().c_str());
      std::exit(2);
    }
  }
  const std::string sat_backend = flags.GetString("sat-backend", "");
  if (!sat_backend.empty()) {
    Status set = SetDefaultSatBackend(sat_backend);
    if (!set.ok()) {
      std::fprintf(stderr, "%s: %s\n", bench_name.c_str(),
                   set.ToString().c_str());
      std::exit(2);
    }
  }
  const std::string level_name = flags.GetString("log-level", "");
  if (!level_name.empty()) {
    log::Level level;
    if (!log::ParseLevel(level_name, &level)) {
      std::fprintf(stderr,
                   "%s: invalid --log-level '%s' "
                   "(use debug|info|warn|error)\n",
                   bench_name.c_str(), level_name.c_str());
      std::exit(2);
    }
    log::SetMinLevel(level);
  }
  BenchContext ctx;
  ctx.bench_name = bench_name;
  ctx.json_path = flags.GetString("json", "");
  ctx.trace_path = flags.GetString("trace", "");
  ctx.threads = flags.GetThreads();
  ctx.lp_backend = DefaultLpBackendName();
  ctx.sat_backend = DefaultSatBackendName();
  ctx.watchdog_ms = flags.GetInt("solver-watchdog-ms", 0);
  if (ctx.watchdog_ms > 0) {
    progress::Watchdog::Global().Start(ctx.watchdog_ms);
  }
  if (!ctx.trace_path.empty()) {
    trace::Collector::Global().Enable();
    // Remembered so an aborting PSO_CHECK still flushes a partial trace.
    trace::Collector::Global().SetFlushPath(ctx.trace_path);
  }
  return ctx;
}

/// The histogram every harness records its main-loop iteration latency
/// into; BENCH_*.json reports its tail quantiles and throughput, and CI
/// asserts it is present.
inline constexpr const char* kMainLoopHist = "bench.main_loop";

/// Runs one main-loop iteration under the per-iteration latency span:
/// the interval lands in the `bench.main_loop` timer + histogram, giving
/// every harness p50..p999 tail latencies and derived events/sec.
template <class Fn>
auto TimedIteration(Fn&& fn) {
  metrics::ScopedSpan span{std::string(kMainLoopHist)};
  return fn();
}

/// Peak resident set size of this process in bytes (0 where the platform
/// offers no getrusage). Linux reports ru_maxrss in KiB.
inline uint64_t PeakRssBytes() {
#if defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

/// The git revision baked in at configure time (root CMakeLists.txt).
inline const char* GitSha() {
#ifdef PSO_GIT_SHA
  return PSO_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Serializes one finished run as the BENCH_*.json document (schema
/// documented in EXPERIMENTS.md). `snapshot.counters` is the
/// deterministic section: same seed + same thread count => identical
/// values on every run. Wall clock, timers, gauges, histogram quantiles,
/// and throughput are run-dependent; histogram event *counts* are
/// deterministic and gated by tools/bench_diff.py.
inline std::string BenchReportJson(const BenchContext& ctx,
                                   const std::string& experiment,
                                   const ShapeChecks& checks,
                                   const metrics::Snapshot& snapshot) {
  const double wall_seconds = ctx.timer.Seconds();
  std::string out = "{\n";
  out += "  \"schema_version\": 3,\n";
  out += StrFormat("  \"bench\": \"%s\",\n",
                   metrics::JsonEscape(ctx.bench_name).c_str());
  out += StrFormat("  \"experiment\": \"%s\",\n",
                   metrics::JsonEscape(experiment).c_str());
  out += StrFormat("  \"git_sha\": \"%s\",\n",
                   metrics::JsonEscape(GitSha()).c_str());
  out += StrFormat("  \"threads\": %zu,\n", ctx.threads);
  out += StrFormat("  \"wall_clock_seconds\": %.6f,\n", wall_seconds);
  out += StrFormat("  \"peak_rss_bytes\": %llu,\n",
                   static_cast<unsigned long long>(PeakRssBytes()));
  out += StrFormat("  \"watchdog_ms\": %lld,\n",
                   static_cast<long long>(ctx.watchdog_ms));
  out += StrFormat(
      "  \"watchdog_stalls\": %llu,\n",
      static_cast<unsigned long long>(progress::Watchdog::Global().stalls()));
  // Derived events/sec per histogram over the run's measured window —
  // the "queries per second" shape the future QueryService reports
  // per-client. Run-dependent (wall clock in the denominator).
  out += "  \"throughput\": {";
  {
    bool first = true;
    for (const auto& [name, hv] : snapshot.histograms) {
      if (!first) out += ", ";
      first = false;
      const double rate = wall_seconds > 0.0
                              ? static_cast<double>(hv.count) / wall_seconds
                              : 0.0;
      out += StrFormat("\"%s\": %.6f", metrics::JsonEscape(name).c_str(),
                       rate);
    }
  }
  out += "},\n";
  out += StrFormat("  \"trace_file\": \"%s\",\n",
                   metrics::JsonEscape(ctx.trace_path).c_str());
  out += "  \"shape_checks\": [";
  for (size_t i = 0; i < checks.results().size(); ++i) {
    const auto& [ok, what] = checks.results()[i];
    if (i > 0) out += ",";
    out += StrFormat("\n    {\"pass\": %s, \"description\": \"%s\"}",
                     ok ? "true" : "false",
                     metrics::JsonEscape(what).c_str());
  }
  out += checks.results().empty() ? "],\n" : "\n  ],\n";
  out += StrFormat("  \"checks_passed\": %zu,\n",
                   checks.results().size() - checks.failures());
  out += StrFormat("  \"checks_failed\": %zu,\n", checks.failures());
  out += StrFormat("  \"metrics\": %s\n",
                   metrics::SnapshotToJson(snapshot).c_str());
  out += "}\n";
  return out;
}

/// Finishes a harness run: records `pool`'s load-balance gauges, prints
/// the shape-check summary, writes the execution trace when --trace was
/// given, and — when --json was given — writes the machine-readable
/// report. Returns the process exit code (nonzero on any failed check or
/// an unwritable --json path).
inline int FinishBench(const BenchContext& ctx, const std::string& experiment,
                       const ShapeChecks& checks,
                       const ThreadPool* pool = nullptr) {
  RecordPoolGauges(pool);
  // Disarm before snapshotting so the stall count in the report is final
  // and the background thread is joined before process teardown.
  progress::Watchdog::Global().Stop();
  int rc = checks.Finish(experiment);
  if (!ctx.trace_path.empty()) {
    if (trace::Collector::Global().WriteChromeJson(ctx.trace_path)) {
      std::printf("trace: %s\n", ctx.trace_path.c_str());
    }
    trace::Collector::Global().Disable();
  }
  if (!ctx.json_path.empty()) {
    metrics::Snapshot snapshot = metrics::Registry::Global().TakeSnapshot();
    std::string json = BenchReportJson(ctx, experiment, checks, snapshot);
    std::FILE* f = std::fopen(ctx.json_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "cannot write JSON report to '%s'\n",
                   ctx.json_path.c_str());
      if (f != nullptr) std::fclose(f);
      return rc != 0 ? rc : 1;
    }
    std::fclose(f);
    std::printf("JSON report: %s\n", ctx.json_path.c_str());
  }
  return rc;
}

}  // namespace pso::bench

#endif  // PSO_BENCH_BENCH_UTIL_H_
