// E13 — Theorem 1.3 / Definition 1.2 empirically: the Laplace mechanism's
// measured privacy loss stays within its declared eps across the sweep,
// the exact count certifies no finite loss, and composition degrades the
// budget exactly as the accountant predicts.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "dp/accountant.h"
#include "dp/audit.h"
#include "dp/mechanisms.h"

namespace pso::dp {
namespace {

int Run(int argc, char** argv) {
  bench::BenchContext ctx =
      bench::MakeBenchContext("bench_dp_audit", argc, argv);
  ctx.threads = 1;  // this harness runs serially
  bench::Banner(
      "E13: auditing Definition 1.2 (Laplace mechanism, Theorem 1.3)",
      "measured privacy loss <= declared eps for the Laplace mechanism at "
      "every eps; the exact count admits no finite eps");

  TextTable table({"mechanism", "declared eps", "measured eps-hat",
                   "within budget"});
  bench::ShapeChecks checks;

  // The max-over-buckets estimator carries a positive finite-sample bias
  // of roughly sqrt(2 ln(B) * 2 / min_support); the tolerance accounts
  // for it (see audit.h).
  const double kBias = 0.12;
  Rng rng(0xA0D1);
  for (double eps : {0.25, 0.5, 1.0, 2.0}) {
    BucketizedMechanism lap = [eps](int which, Rng& r) {
      double count = which == 0 ? 10.0 : 11.0;  // neighboring datasets
      return static_cast<int64_t>(
          std::floor((count + r.Laplace(1.0 / eps)) * 2.0));
    };
    AuditResult audit = bench::TimedIteration(
        [&] { return AuditPrivacyLoss(lap, 600000, rng, 2000); });
    bool ok = audit.empirical_eps <= eps * 1.05 + kBias;
    table.AddRow({"Laplace count", StrFormat("%.2f", eps),
                  StrFormat("%.3f", audit.empirical_eps),
                  ok ? "yes" : "NO"});
    checks.Check(ok, StrFormat("Laplace eps=%.2f within budget", eps));
    // The audit should also show the loss is real (not over-noised).
    checks.CheckBetween(audit.empirical_eps, 0.15 * eps,
                        1.05 * eps + kBias,
                        StrFormat("eps-hat tracks eps=%.2f", eps));
  }

  // Geometric mechanism audit.
  for (double eps : {0.5, 1.0}) {
    BucketizedMechanism geo = [eps](int which, Rng& r) {
      int64_t count = which == 0 ? 10 : 11;
      return GeometricValue(count, eps, r);
    };
    AuditResult audit = AuditPrivacyLoss(geo, 600000, rng, 2000);
    bool ok = audit.empirical_eps <= eps * 1.05 + kBias;
    table.AddRow({"Geometric count", StrFormat("%.2f", eps),
                  StrFormat("%.3f", audit.empirical_eps),
                  ok ? "yes" : "NO"});
    checks.Check(ok, StrFormat("Geometric eps=%.2f within budget", eps));
  }

  // The exact count: no finite loss certifiable (disjoint supports).
  BucketizedMechanism exact = [](int which, Rng&) {
    return static_cast<int64_t>(which == 0 ? 10 : 11);
  };
  AuditResult exact_audit = AuditPrivacyLoss(exact, 50000, rng, 20);
  table.AddRow({"Exact count", "-", "unbounded (disjoint supports)",
                "NO"});
  checks.Check(exact_audit.buckets_compared == 0,
               "exact count certifies no finite eps");
  table.Print();

  // Composition: k Laplace releases of eps each audit to ~k*eps.
  std::printf("\ncomposition audit: two eps=0.5 releases observed jointly\n");
  BucketizedMechanism pair = [](int which, Rng& r) {
    double count = which == 0 ? 10.0 : 11.0;
    int64_t a = static_cast<int64_t>(
        std::floor((count + r.Laplace(1.0 / 0.5)) * 1.0));
    int64_t b = static_cast<int64_t>(
        std::floor((count + r.Laplace(1.0 / 0.5)) * 1.0));
    return a * 1000 + b;  // joint output bucket
  };
  AuditResult joint = AuditPrivacyLoss(pair, 1200000, rng, 2000);
  PrivacyAccountant acc;
  acc.Spend(0.5);
  acc.Spend(0.5);
  std::printf("  accountant bound: eps = %.2f; measured joint eps-hat = "
              "%.3f\n",
              acc.BasicComposition().eps, joint.empirical_eps);
  checks.Check(joint.empirical_eps <=
                   acc.BasicComposition().eps * 1.05 + kBias,
               "joint loss within the composed budget");
  checks.CheckGreater(joint.empirical_eps, 0.5,
                      "joint loss exceeds a single release's eps "
                      "(composition is real)");

  return bench::FinishBench(ctx, "E13", checks);
}

}  // namespace
}  // namespace pso::dp

int main(int argc, char** argv) {
  return pso::dp::Run(argc, argv);
}
