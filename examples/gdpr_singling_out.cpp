// A guided tour of Section 2: from the GDPR's text to predicate singling
// out, step by step —
//   (1) isolation (Definition 2.1) and why trivial attackers force the
//       weight condition (the birthday example),
//   (2) a mechanism that prevents PSO: the count mechanism (Theorem 2.5),
//   (3) why security does not compose: ~log n counts isolate (Theorem 2.8),
//   (4) what does hold up: a differentially private count (Theorem 2.9).
//
// Build & run:  ./build/examples/gdpr_singling_out

#include <cstdio>

#include "common/stats.h"
#include "data/generators.h"
#include "pso/adversaries.h"
#include "pso/composition_attack.h"
#include "pso/game.h"
#include "pso/mechanisms.h"

int main() {
  using namespace pso;

  std::printf(
      "GDPR Recital 26: to determine identifiability, 'account should be "
      "taken of all the means reasonably likely to be used, such as "
      "singling out'.\nArticle 29 WP: singling out = 'the possibility to "
      "isolate some or all records which identify an individual'.\n\n");

  // ---- (1) Isolation and the trivial attacker ----
  Universe birthdays = MakeBirthdayUniverse();
  Rng rng(29);
  BernoulliEstimator trivial;
  auto apr30 = MakeAttributeEquals(0, 119, "birthday");
  for (int t = 0; t < 2000; ++t) {
    Dataset x = birthdays.distribution.SampleDataset(365, rng);
    trivial.Add(Isolates(*apr30, x));
  }
  std::printf(
      "(1) 365 random birthdays; the fixed predicate 'birthday == Apr-30' "
      "isolates %.1f%% of the time without looking at any output.\n"
      "    => plain 'no isolation' (Definition 2.3) is unachievable; the "
      "definition must discount predicates of non-negligible weight "
      "(Definition 2.4).\n\n",
      100.0 * trivial.rate());

  // ---- (2) The count mechanism prevents PSO ----
  Universe gic = MakeGicMedicalUniverse();
  const size_t n = 400;
  auto q = MakeAttributeEquals(3, 0, "sex");
  PsoGameOptions opts;
  opts.trials = 120;
  PsoGame game(gic.distribution, n, opts);
  auto count_result = game.Run(*MakeCountMechanism(q, "sex=F"),
                               *MakeCountTunedAdversary(q, "sex=F"));
  std::printf(
      "(2) Theorem 2.5 — the exact count M#q:\n    %s\n"
      "    No advantage over the baseline: the count prevents PSO.\n\n",
      count_result.Summary().c_str());

  // ---- (3) Composition breaks it ----
  auto composed = RunCompositionGame(gic.distribution, n, 40,
                                     /*adaptive=*/true,
                                     /*weight_threshold=*/1.0 / (10.0 * n),
                                     /*max_queries=*/200, /*seed=*/31);
  std::printf(
      "(3) Theorem 2.8 — composing count mechanisms: %.0f%% PSO success "
      "using %.1f count queries on average (baseline %.1f%%).\n"
      "    'Count queries can be used to learn sufficiently many bits of "
      "a single record so as to isolate it.'\n\n",
      100.0 * composed.pso_success.rate(), composed.queries_used.mean(),
      100.0 * composed.baseline);

  // ---- (4) Differential privacy holds ----
  auto dp_result =
      game.Run(*MakeLaplaceCountMechanism(q, "sex=F", /*eps=*/1.0),
               *MakeTrivialHashAdversary(1.0 / (10.0 * n)));
  std::printf(
      "(4) Theorem 2.9 — the eps=1 Laplace count:\n    %s\n"
      "    DP prevents predicate singling out; whether it meets the full "
      "GDPR anonymization standard 'needs further analysis' (Section "
      "2.4.1).\n",
      dp_result.Summary().c_str());
  return 0;
}
