// An analyst session, watched by the privacy accountant — and then the
// same interface driven by an attacker.
//
// Part 1 plays the honest analyst: a handful of useful count queries
// against exact and Laplace sessions, with the accountant's running
// (eps, delta) ledger alongside.
// Part 2 hands the very same session interface to the Theorem 2.8
// binary-search attacker: exact answers surrender a record after ~15
// queries; the noisy session never does.
//
// Build & run:  ./build/examples/interactive_analyst

#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include "pso/game.h"
#include "pso/interactive.h"

int main() {
  using namespace pso;

  Universe u = MakeGicMedicalUniverse();
  Rng rng(1789);
  const size_t n = 500;
  Dataset x = u.distribution.SampleDataset(n, rng);

  // ---- Part 1: the honest analyst ----
  struct Query {
    const char* label;
    PredicateRef pred;
  };
  std::vector<Query> workload = {
      {"patients with sex = F", MakeAttributeEquals(3, 0, "sex")},
      {"born 1960 or later", MakeAttributeRange(1, 1960, 2004, "birth_year")},
      {"diagnosis ICD00", MakeAttributeEquals(4, 0, "diagnosis")},
      {"admitted in winter (Dec-Feb)",
       MakeAttributeIn(7, {12, 1, 2}, "admission_month")},
  };

  auto exact_mech = MakeExactCountSessionMechanism();
  auto noisy_mech = MakeLaplaceCountSessionMechanism(/*eps_per_query=*/0.25);
  auto exact = exact_mech->StartSession(x, rng);
  auto noisy = noisy_mech->StartSession(x, rng);

  std::printf("Honest analyst, n = %zu:\n", n);
  std::printf("  %-32s %8s %10s %18s\n", "query", "exact", "eps=0.25",
              "accountant (eps)");
  for (const Query& q : workload) {
    double e = exact->AnswerCount(*q.pred);
    double v = noisy->AnswerCount(*q.pred);
    std::printf("  %-32s %8.0f %10.1f %18.2f\n", q.label, e, v,
                noisy->PrivacySpent().eps);
  }
  std::printf(
      "\nThe noisy answers are a little off; the accountant knows exactly "
      "how much total privacy the session has spent. The exact session "
      "has spent: infinity.\n\n");

  // ---- Part 2: the attacker at the same counter ----
  PsoGameOptions opts;
  opts.trials = 50;
  PsoGame game(u.distribution, n, opts);
  auto attacker = MakeBinarySearchIsolationAdversary(200);

  auto broken = game.RunInteractive(*exact_mech, *attacker);
  auto safe = game.RunInteractive(*noisy_mech, *attacker);
  std::printf("The same interface, driven by the Theorem 2.8 attacker:\n");
  std::printf("  %s\n", broken.Summary().c_str());
  std::printf("  %s\n", safe.Summary().c_str());
  std::printf(
      "\n'Overly accurate answers to too many questions will destroy "
      "privacy in a spectacular way' — and calibrated noise is what "
      "prevents it.\n");
  return 0;
}
