// The Census story of Section 1, end to end on one small county:
// tabulate blocks SF1-style, reconstruct the microdata from the tables
// with the CSP solver, link against a simulated commercial database, and
// watch the DP-protected tabulation shut the attack down.
//
// Build & run:  ./build/examples/census_reconstruction

#include <cstdio>

#include "census/reidentify.h"
#include "common/str_util.h"
#include "common/table.h"

int main() {
  using namespace pso;
  using namespace pso::census;

  PopulationOptions popts;
  popts.num_blocks = 40;
  popts.min_block_size = 2;
  popts.max_block_size = 8;
  Rng rng(1940);
  Population county = GeneratePopulation(popts, rng);
  std::printf("Synthetic county: %zu persons in %zu blocks.\n\n",
              county.total_persons, county.blocks.size());

  // Show one block's ground truth and its published tables.
  const Block& block = county.blocks.front();
  std::printf("Block %zu ground truth (%zu persons):\n%s\n", block.id,
              block.persons.size(), block.persons.ToString().c_str());
  BlockTables tables = Tabulate(block);
  std::printf("Published (exact) tables for block %zu: total=%lld, "
              "median age=%lld, plus single-year-of-age, sex x age, race, "
              "and Hispanic-origin counts.\n\n",
              block.id, (long long)tables.total,
              (long long)tables.median_age.value_or(-1));

  // Reconstruct that block.
  BlockReconstruction r = ReconstructBlock(tables, block.persons);
  std::printf("Reconstruction of block %zu: %zu solution(s)%s, %zu/%zu "
              "records exactly recovered.\n",
              block.id, r.solutions_found, r.unique ? " (unique!)" : "",
              r.exact_matches, block.persons.size());
  if (!r.reconstructed.empty()) {
    std::printf("First reconstructed solution:\n");
    for (const Record& rec : r.reconstructed) {
      std::printf("  %s\n",
                  county.universe.schema.RecordToString(rec).c_str());
    }
  }

  // Full county, exact vs DP tables.
  std::vector<BlockTables> exact;
  std::vector<BlockTables> noisy;
  Rng dprng(2020);
  for (const Block& b : county.blocks) {
    exact.push_back(Tabulate(b));
    noisy.push_back(TabulateDp(b, /*eps=*/0.5, dprng));
  }
  std::vector<BlockReconstruction> per_block;
  ReconstructionReport exact_report =
      ReconstructPopulation(county, exact, {}, &per_block);
  ReconstructOptions dp_opts;
  dp_opts.max_solutions = 16;
  dp_opts.max_nodes = 150000;
  ReconstructionReport dp_report =
      ReconstructPopulation(county, noisy, dp_opts);

  CommercialOptions copts;
  Rng crng(77);
  auto commercial = SimulateCommercialDatabase(county, copts, crng);
  ReidentificationReport reid = Reidentify(county, per_block, commercial);

  TextTable summary({"metric", "exact tables", "DP tables (eps=0.5)"});
  summary.AddRow({"blocks solved exactly",
                  StrFormat("%.0f%%", 100.0 * exact_report.block_unique_fraction()),
                  StrFormat("%.0f%%", 100.0 * dp_report.block_unique_fraction())});
  summary.AddRow({"persons reconstructed exactly",
                  StrFormat("%.0f%%", 100.0 * exact_report.person_exact_fraction()),
                  StrFormat("%.0f%%", 100.0 * dp_report.person_exact_fraction())});
  summary.AddRow({"confirmed re-identification",
                  StrFormat("%.1f%%", 100.0 * reid.confirmed_rate()), "-"});
  std::printf("\n%s", summary.Render().c_str());
  std::printf(
      "\nTitle 13 forbids publications 'whereby the data furnished by any "
      "particular ... individual ... can be identified' — the exact-table "
      "column shows why the 2020 Census moved to differential privacy.\n");
  return 0;
}
