// Quickstart: is a k-anonymized release "anonymous" in the GDPR sense?
//
// Ten lines of libpso: pick a data universe, wrap an anonymizer as a
// mechanism, play the predicate-singling-out game against it, and render
// the legal verdict.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "data/generators.h"
#include "legal/verdict.h"
#include "pso/adversaries.h"
#include "pso/game.h"
#include "pso/mechanisms.h"

int main() {
  using namespace pso;

  // 1. A data universe: GIC-style medical records, sampled i.i.d.
  Universe universe = MakeGicMedicalUniverse();

  // 2. The technology under audit: Mondrian 5-anonymization, every
  //    attribute treated as a quasi-identifier.
  MechanismRef mechanism = MakeKAnonymityMechanism(
      KAnonAlgorithm::kMondrian, /*k=*/5,
      kanon::HierarchySet::Defaults(universe.schema), /*qi_attrs=*/{});

  // 3. The predicate-singling-out game (Definition 2.4): 100 rounds of
  //    x ~ D^400, y = M(x), p = A(y); the attacker wins a round if p
  //    isolates in x AND the game verifies w_D(p) is negligible.
  PsoGameOptions options;
  options.trials = 100;
  PsoGame game(universe.distribution, /*n=*/400, options);

  PsoGameResult hash_attack =
      game.Run(*mechanism, *MakeKAnonHashAdversary());
  PsoGameResult downcoding =
      game.Run(*mechanism, *MakeKAnonMinimalityAdversary());

  std::printf("%s\n", hash_attack.Summary().c_str());
  std::printf("%s\n\n", downcoding.Summary().c_str());

  // 4. The legal theorem (Section 2.4): failing PSO security implies
  //    failing the GDPR's singling-out prevention, which is necessary for
  //    the anonymization exception.
  legal::LegalClaim claim = legal::EvaluateSinglingOutClaim(
      "k-anonymity (Mondrian, k=5)", {hash_attack, downcoding});
  legal::LegalClaim corollary = legal::DeriveAnonymizationCorollary(claim);
  std::printf("%s\n%s\n", claim.ToString().c_str(),
              corollary.ToString().c_str());
  return 0;
}
