// The paper's Section 1.1 toy example (E14): a four-record medical table
// and a 2-anonymized version of it, reproduced with libpso's hierarchies
// and the Datafly anonymizer — followed by exactly the equivalence-class
// predicate the paper builds from the PULM class in Section 2.3.4.
//
// Build & run:  ./build/examples/toy_anonymization

#include <cstdio>

#include "kanon/attacks.h"
#include "kanon/datafly.h"
#include "predicate/predicate.h"

int main() {
  using namespace pso;
  using namespace pso::kanon;

  // The table from Section 1.1 (disease codes laid out so that the
  // pulmonary group {CF, Asthma} is contiguous for the taxonomy level).
  Schema schema({
      Attribute::Integer("zip", 10000, 29999),
      Attribute::Integer("age", 0, 99),
      Attribute::Categorical("sex", {"F", "M"}),
      Attribute::Categorical("disease", {"COVID", "FLU", "CF", "Asthma"}),
  });
  Dataset data(schema, {
                           {23456, 55, 0, 0},  // 23456, 55, F, COVID
                           {23456, 42, 0, 0},  // 23456, 42, F, COVID
                           {12345, 30, 1, 2},  // 12345, 30, M, CF
                           {12346, 33, 0, 3},  // 12346, 33, F, Asthma
                       });

  std::printf("Original dataset x (Section 1.1, left table):\n%s\n",
              data.ToString().c_str());

  // Disease taxonomy: {COVID, FLU} -> VIRAL, {CF, Asthma} -> PULM.
  ValueHierarchy disease =
      ValueHierarchy::Intervals(schema.attribute(3), {1, 2});
  disease.SetLevelLabels(1, {"VIRAL", "PULM"});

  HierarchySet hierarchies(
      schema,
      {
          // ZIP: drop trailing digits one at a time (hierarchical
          // generalization, footnote 4).
          ValueHierarchy::Intervals(schema.attribute(0), {1, 10, 100, 1000}),
          // Age: decades, then 50-year bands, then "*".
          ValueHierarchy::Intervals(schema.attribute(1), {1, 10, 50}),
          // Sex: keep or suppress.
          ValueHierarchy::IdentityOrSuppress(schema.attribute(2)),
          std::move(disease),
      });

  // The paper's right-hand table uses LOCAL recoding (each class picks its
  // own generalization levels): the COVID pair keeps its exact ZIP and
  // suppresses age; the PULM pair keeps a ZIP prefix and an age decade and
  // suppresses sex. Build it by hand and let the library verify it.
  GeneralizedDataset paper_table{hierarchies};
  paper_table.Append({{23456, 23456}, {0, 99}, {0, 0}, {0, 0}});
  paper_table.Append({{23456, 23456}, {0, 99}, {0, 0}, {0, 0}});
  paper_table.Append({{12340, 12349}, {30, 39}, {0, 1}, {2, 3}});
  paper_table.Append({{12340, 12349}, {30, 39}, {0, 1}, {2, 3}});
  std::printf("The paper's 2-anonymized x' (Section 1.1, right table):\n%s\n",
              paper_table.ToString().c_str());
  std::printf("  2-anonymous: %s;  covers the original records: %s\n\n",
              IsKAnonymous(paper_table, 2) ? "yes" : "NO",
              (paper_table.Covers(0, data.record(0)) &&
               paper_table.Covers(1, data.record(1)) &&
               paper_table.Covers(2, data.record(2)) &&
               paper_table.Covers(3, data.record(3)))
                  ? "yes"
                  : "NO");

  // A global-recoding anonymizer (Datafly) reaches 2-anonymity too, but
  // must apply one level schedule to every row — coarser than the paper's
  // locally-recoded table.
  DataflyOptions options;
  options.k = 2;
  options.qi_attrs = {0, 1, 2, 3};
  options.max_suppression = 0.0;
  auto result = DataflyAnonymize(data, hierarchies, options);
  if (!result.ok()) {
    std::printf("anonymization failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("Datafly's (global-recoding) 2-anonymization of the same "
              "data:\n%s\n",
              result->generalized.ToString().c_str());

  // Section 2.3.4: the predicate of the PULM equivalence class — evaluates
  // to 1 on a record iff zip in 1234*, age in 30-39 band, disease in PULM.
  for (size_t c = 0; c < result->classes.size(); ++c) {
    PredicateRef p = EquivalenceClassPredicate(*result, c);
    std::printf("class %zu (%zu records): %s\n", c,
                result->classes[c].size(), p->Description().c_str());
    std::printf("  matches in x: %zu\n", CountMatches(*p, data));
  }
  std::printf(
      "\nThe paper's point: these class predicates are exactly the "
      "footholds the Theorem 2.10 attack refines into negligible-weight "
      "isolating predicates.\n");
  return 0;
}
